"""Exactly-once replay of the request journal after a crash.

The engine's journal (:mod:`repro.service.journal`) records every
lifecycle transition *before* acting on it.  This module is the read
side: given the surviving records, build the :class:`ReplayIndex` a
restarted engine consults while it re-runs its deterministic
trajectory —

- an ``attempt`` record means the solve's classified result is already
  durable: the engine *skips the solve* and synthesizes an equivalent
  :class:`~repro.service.worker.ExecutionResult` from the record (plus
  the solution array out of the :class:`ResultStore` for converged
  attempts), so acknowledged work is never redone;
- a ``dispatched`` record without a matching ``attempt`` marks the
  in-flight crash victim: the engine re-executes it, resuming
  mid-solve from its durable guard shards when the request opted into
  checkpointing (``resume="exact"``);
- ``terminal`` records with an idempotency key feed the exactly-once
  acknowledgement map — a later submission reusing the key is served
  the journaled digest without a solve, across restarts.

The :class:`ResultStore` persists converged solutions as CRC-validated
``.npz`` shards (reusing the checkpoint shard format) keyed by request
id, with a content digest cross-checked against the journal on load.  A
damaged shard degrades to a warning and a deterministic re-solve — whose
digest must then match the journaled one, or recovery aborts with
:class:`~repro.utils.errors.JournalError` (the re-run diverged).
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from repro.resilience.checkpoint import load_shard, write_shard
from repro.utils.errors import CheckpointError

__all__ = ["RecoveryWarning", "ReplayIndex", "ResultStore",
           "deck_fingerprint", "replay_error", "solution_digest",
           "synthesize_result"]


class RecoveryWarning(UserWarning):
    """A durable artifact was damaged; recovery degraded instead of dying."""


def deck_fingerprint(deck_text: str) -> str:
    """SHA-256 of the deck bytes — ties journal records to their input."""
    return hashlib.sha256(deck_text.encode("utf-8")).hexdigest()


def solution_digest(x) -> str:
    """Content digest of a solution array (dtype/shape/bytes)."""
    a = np.ascontiguousarray(x)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


@dataclass
class ReplayIndex:
    """What the journal already knows, keyed for the engine's re-run."""

    #: (request_id, attempt) -> attempt record (solve already classified)
    attempts: dict = field(default_factory=dict)
    #: (request_id, attempt) -> dispatched record
    dispatched: dict = field(default_factory=dict)
    #: request_id -> terminal record
    terminals: dict = field(default_factory=dict)
    #: request_id -> admission record (accepted / shed / dedup) — the
    #: journaled *decision*, which replay must follow verbatim: the
    #: fully-seeded key map below knows about completions that happened
    #: *after* this admission in the original run
    admissions: dict = field(default_factory=dict)
    #: idempotency key -> terminal record of the acknowledged completion
    completed_by_key: dict = field(default_factory=dict)
    #: total records indexed
    record_count: int = 0

    @classmethod
    def from_records(cls, records: list[dict]) -> "ReplayIndex":
        index = cls(record_count=len(records))
        for rec in records:
            kind = rec.get("type")
            rid = rec.get("request_id", "")
            if kind in ("accepted", "shed", "dedup"):
                index.admissions[rid] = rec
            elif kind == "dispatched":
                index.dispatched[(rid, rec["attempt"])] = rec
            elif kind == "attempt":
                index.attempts[(rid, rec["attempt"])] = rec
            elif kind == "terminal":
                index.terminals[rid] = rec
                key = rec.get("key", "")
                if key and rec.get("status") in ("completed", "degraded"):
                    index.completed_by_key.setdefault(key, rec)
        return index

    def in_flight(self) -> list[tuple[str, int]]:
        """Dispatches the crash interrupted mid-solve (newest attempt only)."""
        return sorted(
            (rid, attempt) for (rid, attempt) in self.dispatched
            if (rid, attempt) not in self.attempts
            and rid not in self.terminals)

    def resumable(self, request_id: str, attempt: int) -> bool:
        """True when this exact dispatch died mid-solve pre-crash."""
        return ((request_id, attempt) in self.dispatched
                and (request_id, attempt) not in self.attempts
                and request_id not in self.terminals)


class ResultStore:
    """Durable converged-solution store backing exactly-once replies.

    One atomically-written, CRC-validated ``.npz`` shard per request id
    (the checkpoint shard format — a flipped bit surfaces on load, not
    as a silently wrong answer).  ``load`` additionally cross-checks the
    journaled content digest; any damage degrades to ``None`` plus a
    :class:`RecoveryWarning`, and the caller re-solves deterministically.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.saves = 0

    def path_for(self, request_id: str) -> Path:
        return self.root / f"result-{request_id}.npz"

    def save(self, request_id: str, x) -> str:
        """Persist the solution; return its content digest."""
        digest = solution_digest(x)
        write_shard(self.path_for(request_id), {"x": np.asarray(x)},
                    {"digest": digest, "request_id": request_id})
        self.saves += 1
        return digest

    def load(self, request_id: str, expected_digest: str):
        """The stored solution, or ``None`` (+ warning) when unusable."""
        path = self.path_for(request_id)
        if not path.is_file():
            warnings.warn(
                f"result shard missing for {request_id}; re-solving",
                RecoveryWarning, stacklevel=2)
            return None
        try:
            arrays, scalars = load_shard(path)
        except CheckpointError as exc:
            warnings.warn(
                f"result shard for {request_id} unreadable ({exc}); "
                f"re-solving", RecoveryWarning, stacklevel=2)
            return None
        x = arrays.get("x")
        if x is None or (expected_digest
                         and scalars.get("digest") != expected_digest) \
                or (expected_digest
                    and solution_digest(x) != expected_digest):
            warnings.warn(
                f"result shard for {request_id} does not match the "
                f"journaled digest; re-solving", RecoveryWarning,
                stacklevel=2)
            return None
        return x


_ERROR_TYPES: dict[str, type] = {}


def replay_error(error_class: str, message: str) -> BaseException:
    """An exception whose type name / str match a journaled failure.

    The engine reports errors structurally (``type(e).__name__`` +
    ``str(e)``), so a dynamically named stand-in keeps replayed outcome
    ledgers byte-identical without re-raising the original machinery.
    """
    cls = _ERROR_TYPES.get(error_class)
    if cls is None:
        cls = type(error_class, (RuntimeError,), {
            "__doc__": "Replayed stand-in for a journaled failure."})
        _ERROR_TYPES[error_class] = cls
    return cls(message)


def synthesize_result(entry: dict, x=None):
    """An :class:`ExecutionResult`-equivalent built from an ``attempt``
    record — what the engine uses instead of re-running the solve."""
    from repro.service.worker import ExecutionResult

    error = None
    if entry.get("error_class"):
        error = replay_error(entry["error_class"],
                             entry.get("error_message", ""))
    report = None
    rep = entry.get("report")
    if rep is not None:
        bounds = entry.get("bounds")
        report = SimpleNamespace(
            retries=int(rep["retries"]),
            degraded=bool(rep["degraded"]),
            virtual_time_s=float(rep["virtual_time_s"]),
            x=x,
            result=SimpleNamespace(
                eigen_bounds=tuple(bounds) if bounds else None))
    return ExecutionResult(entry["kind"], report=report, error=error,
                           iterations=int(entry["iterations"]))
