"""Overload-graceful degradation ladder.

Under queue pressure the engine trades solve quality-of-service for
throughput by laddering a request's :class:`SolverOptions` down through
cheaper configurations (reusing the degradation hooks the solvers
already honour).  Rungs, in the order they are applied:

1. ``depth1``   — matrix-powers halo depth → 1 (the same fallback the
   CPPCG inner iteration takes on repeated halo-exchange failure);
2. ``cg``       — Chebyshev/CPPCG → plain CG (skips the warm-up
   eigenvalue estimation entirely);
3. ``numpy``    — routed kernel backends → the baseline numpy backend
   (no fused cache-blocked chains, no jit warm-up).

Each rung returns ``None`` when it does not apply, so
:func:`degrade_for_pressure` composes only the applicable ones and
reports exactly which rungs were taken — the ledger's degrade-rate SLO
counts those.
"""

from __future__ import annotations

from dataclasses import replace

from repro.solvers.options import SolverOptions


def _depth1(options: SolverOptions):
    if options.solver in ("chebyshev", "ppcg") and options.halo_depth > 1:
        return replace(options, halo_depth=1)
    return None


def _to_cg(options: SolverOptions):
    if options.solver in ("chebyshev", "ppcg"):
        return replace(options, solver="cg", halo_depth=1)
    return None


def _to_numpy(options: SolverOptions):
    if options.kernel_backend != "numpy":
        return replace(options, kernel_backend="numpy")
    return None


#: (rung name, transform) in application order.
LADDER = (
    ("depth1", _depth1),
    ("cg", _to_cg),
    ("numpy", _to_numpy),
)


def degrade_for_pressure(options: SolverOptions,
                         level: int) -> tuple[SolverOptions, list[str]]:
    """Apply the first ``level`` *applicable* rungs to ``options``.

    Returns the (possibly unchanged) options and the names of the rungs
    actually taken.  ``level <= 0`` is the identity.
    """
    applied: list[str] = []
    for name, rung in LADDER:
        if len(applied) >= level:
            break
        downgraded = rung(options)
        if downgraded is not None:
            options = downgraded
            applied.append(name)
    return options, applied
