"""Asyncio front-end of the solve service.

:class:`SolveService` accepts concurrent deck-style solve requests from
coroutines and executes them on a thread pool — each solve is a real
(optionally SPMD) solve through the resilient stack, with the same
admission control (token-bucket quota + bounded in-flight window) and
cooperative cancellation the deterministic engine applies.  Deadlines
here are *wall-clock*: a timer fires the request's
:class:`~repro.service.cancel.CancelToken`, and the solver raises at its
next iteration boundary — same latched-boundary semantics, real time.

This is the interactive face (``repro serve --demo``,
``examples/service_demo.py``); capacity planning and chaos validation
run on the virtual-clock :class:`~repro.service.engine.ServiceEngine`,
whose ledgers are byte-deterministic.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.physics.deck import deck_solver_options, parse_deck_text
from repro.service.cancel import CancelToken
from repro.service.quota import TokenBucket
from repro.service.requests import RequestOutcome
from repro.service.worker import WorkerGroup
from repro.utils.errors import ConfigurationError

_DEADLINE_REASON = "deadline exceeded"


class SolveService:
    """Concurrent solve intake over a bounded thread worker pool."""

    def __init__(self, workers: int = 2, group_size: int = 1,
                 max_inflight: int = 8,
                 quota_rate: float = 10.0, quota_burst: float = 5.0):
        self.workers = workers
        self.group_size = group_size
        self.max_inflight = max_inflight
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="solve-worker")
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight = 0
        self._count = 0
        self._pool = [WorkerGroup(i, group_size=group_size)
                      for i in range(workers)]

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.quota_rate, self.quota_burst)
            self._buckets[tenant] = bucket
        return bucket

    async def submit(self, deck_text: str, *, tenant: str = "default",
                     n: int = 16, deadline_s: float | None = None,
                     cancel: CancelToken | None = None) -> RequestOutcome:
        """Admit and run one solve; always returns a terminal outcome.

        Pass your own ``cancel`` token to retain a mid-flight cancel
        handle (``token.cancel()`` from any task/thread aborts the solve
        at its next iteration boundary).
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        self._count += 1
        outcome = RequestOutcome(request_id=f"req-{self._count:05d}",
                                 tenant=tenant, status="shed",
                                 arrival_s=now)
        if not self._bucket(tenant).try_acquire(now):
            outcome.shed_reason = "quota"
            outcome.finish_s = now
            return outcome
        if self._inflight >= self.max_inflight:
            outcome.shed_reason = "queue_full"
            outcome.finish_s = now
            return outcome

        token = cancel if cancel is not None else CancelToken()
        timer = None
        if deadline_s is not None:
            timer = loop.call_later(
                deadline_s, token.cancel, _DEADLINE_REASON)

        worker = self._pool[(self._count - 1) % len(self._pool)]
        outcome.worker = worker.wid
        outcome.start_s = loop.time()
        self._inflight += 1
        try:
            try:
                options = deck_solver_options(parse_deck_text(deck_text))
            except (ConfigurationError, ValueError) as exc:
                outcome.status = "failed"
                outcome.error_class = type(exc).__name__
                outcome.error_message = str(exc)[:200]
                return outcome
            outcome.solver = options.solver
            result = await loop.run_in_executor(
                self._executor,
                lambda: worker.execute(options, n, cancel=token))
            outcome.attempts = 1
            outcome.iterations = result.iterations
            if result.kind == "ok":
                outcome.status = "degraded" if result.report.degraded \
                    else "completed"
                outcome.x = result.report.x
                outcome.retries = result.report.retries
            elif result.kind == "cancelled" \
                    and token.reason == _DEADLINE_REASON:
                outcome.status = "deadline_exceeded"
                outcome.error_class = result.error_class
                outcome.error_message = str(result.error)[:200]
            elif result.kind in ("cancelled", "deadline_exceeded"):
                outcome.status = result.kind
                outcome.error_class = result.error_class
                outcome.error_message = str(result.error)[:200]
            else:
                outcome.status = "failed"
                outcome.error_class = result.error_class
                outcome.error_message = str(result.error)[:200]
            return outcome
        finally:
            self._inflight -= 1
            if timer is not None:
                timer.cancel()
            outcome.finish_s = loop.time()
