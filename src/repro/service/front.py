"""Asyncio front-end of the solve service.

:class:`SolveService` accepts concurrent deck-style solve requests from
coroutines and executes them on a thread pool — each solve is a real
(optionally SPMD) solve through the resilient stack, with the same
admission control (token-bucket quota + bounded in-flight window) and
cooperative cancellation the deterministic engine applies.  Deadlines
here are *wall-clock*: a timer fires the request's
:class:`~repro.service.cancel.CancelToken`, and the solver raises at its
next iteration boundary — same latched-boundary semantics, real time.

Dispatch is **breaker-gated**: a worker whose circuit breaker is open is
skipped (half-open probes are claimed atomically via
``CircuitBreaker.on_dispatch``), and a retryable or supervisor-declared
*stuck* result re-dispatches once, hedged onto a different worker.  With
``stuck_after_s`` set, a wall-clock watchdog arms per dispatch and trips
the :class:`~repro.service.supervisor.SupervisedToken` — the solve then
aborts cooperatively at its next iteration boundary with
:class:`~repro.utils.errors.WorkerStuck`.

With a ``journal`` (+ optional ``results`` store) the front records
lifecycle transitions durably and serves **exactly-once** answers for
idempotency keys across restarts — a resubmitted key whose completion is
journaled returns the stored digest/solution without a solve.  The
wall-clock front is append-only on the journal (its trajectory is not
deterministically replayable); full verify-or-append recovery is the
virtual-clock :class:`~repro.service.engine.ServiceEngine`'s job.

This is the interactive face (``repro serve --demo``,
``examples/service_demo.py``); capacity planning and chaos validation
run on the virtual-clock engine, whose ledgers are byte-deterministic.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.physics.deck import deck_solver_options, parse_deck_text
from repro.service.cancel import CancelToken
from repro.service.quota import TokenBucket
from repro.service.recovery import (
    ReplayIndex,
    deck_fingerprint,
    solution_digest,
)
from repro.service.requests import RequestOutcome
from repro.service.supervisor import SupervisedToken
from repro.service.worker import WorkerGroup
from repro.utils.errors import ConfigurationError

_DEADLINE_REASON = "deadline exceeded"

#: service-level dispatch attempts per request (initial + one hedge)
_MAX_DISPATCHES = 2


class SolveService:
    """Concurrent solve intake over a bounded thread worker pool."""

    def __init__(self, workers: int = 2, group_size: int = 1,
                 max_inflight: int = 8,
                 quota_rate: float = 10.0, quota_burst: float = 5.0,
                 stuck_after_s: float = 0.0,
                 journal=None, results=None):
        self.workers = workers
        self.group_size = group_size
        self.max_inflight = max_inflight
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.stuck_after_s = stuck_after_s
        self.journal = journal
        self.results = results
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="solve-worker")
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight = 0
        self._count = 0
        self._pool = [WorkerGroup(i, group_size=group_size)
                      for i in range(workers)]
        records = journal.records if journal is not None else []
        index = ReplayIndex.from_records(records)
        #: idempotency key -> terminal record (journal-seeded, grown live)
        self._completed_keys: dict[str, dict] = dict(index.completed_by_key)
        for rec in records:
            # Continue request numbering past the journal so replayed ids
            # never collide with new submissions.
            rid = rec.get("request_id", "")
            if rid.startswith("req-"):
                try:
                    self._count = max(self._count, int(rid[4:]))
                except ValueError:
                    pass
        if journal is not None:
            journal.fast_forward()

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        if self.journal is not None:
            self.journal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.quota_rate, self.quota_burst)
            self._buckets[tenant] = bucket
        return bucket

    def _journal(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _pick_worker(self, now: float, avoid: int = -1):
        """Round-robin worker whose breaker admits this dispatch.

        ``on_dispatch`` is the atomic admit-and-claim: in half-open
        state exactly one in-flight probe wins, so concurrent submits
        cannot stampede a recovering worker.  Prefers workers other
        than ``avoid`` (the one that just failed the request).
        """
        start = (self._count - 1) % len(self._pool)
        order = self._pool[start:] + self._pool[:start]
        for w in sorted(order, key=lambda w: w.wid == avoid):
            if w.breaker.on_dispatch(now):
                return w
        return None

    async def submit(self, deck_text: str, *, tenant: str = "default",
                     n: int = 16, deadline_s: float | None = None,
                     cancel: CancelToken | None = None,
                     idempotency_key: str = "") -> RequestOutcome:
        """Admit and run one solve; always returns a terminal outcome.

        Pass your own ``cancel`` token to retain a mid-flight cancel
        handle (``token.cancel()`` from any task/thread aborts the solve
        at its next iteration boundary).  A non-empty
        ``idempotency_key`` whose completion is already journaled is
        served without a solve (``deduplicated=True``).
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        self._count += 1
        outcome = RequestOutcome(request_id=f"req-{self._count:05d}",
                                 tenant=tenant, status="shed",
                                 arrival_s=now,
                                 idempotency_key=idempotency_key)
        done = (self._completed_keys.get(idempotency_key)
                if idempotency_key else None)
        if done is not None:
            outcome.status = "completed"
            outcome.deduplicated = True
            outcome.solver = done.get("solver", "")
            outcome.finish_s = now
            if self.results is not None and done.get("digest"):
                outcome.x = self.results.load(done["request_id"],
                                              done["digest"])
            self._journal({"type": "dedup",
                           "request_id": outcome.request_id,
                           "key": idempotency_key,
                           "source": done["request_id"], "now": now})
            return outcome
        if not self._bucket(tenant).try_acquire(now):
            outcome.shed_reason = "quota"
            outcome.finish_s = now
            self._journal({"type": "shed",
                           "request_id": outcome.request_id,
                           "reason": "quota", "now": now})
            return outcome
        if self._inflight >= self.max_inflight:
            outcome.shed_reason = "queue_full"
            outcome.finish_s = now
            self._journal({"type": "shed",
                           "request_id": outcome.request_id,
                           "reason": "queue_full", "now": now})
            return outcome
        self._journal({"type": "accepted",
                       "request_id": outcome.request_id, "tenant": tenant,
                       "arrival_s": now, "key": idempotency_key, "n": n,
                       "deck_sha": deck_fingerprint(deck_text)})

        token = cancel if cancel is not None else CancelToken()
        timer = None
        if deadline_s is not None:
            timer = loop.call_later(
                deadline_s, token.cancel, _DEADLINE_REASON)

        digest = ""
        self._inflight += 1
        try:
            try:
                options = deck_solver_options(parse_deck_text(deck_text))
            except (ConfigurationError, ValueError) as exc:
                outcome.status = "failed"
                outcome.error_class = type(exc).__name__
                outcome.error_message = str(exc)[:200]
                return outcome
            outcome.solver = options.solver

            avoid = -1
            for attempt in range(1, _MAX_DISPATCHES + 1):
                worker = self._pick_worker(loop.time(), avoid=avoid)
                if worker is None:
                    # Every breaker refused: structured shed, the same
                    # way the engine sheds behind saturated admission.
                    outcome.status = "shed"
                    outcome.shed_reason = "breaker_open"
                    return outcome
                outcome.worker = worker.wid
                outcome.attempts = attempt
                if outcome.start_s < 0:
                    outcome.start_s = loop.time()
                self._journal({"type": "dispatched",
                               "request_id": outcome.request_id,
                               "attempt": attempt, "worker": worker.wid,
                               "now": loop.time()})
                run_token = token
                watchdog = None
                if self.stuck_after_s > 0:
                    run_token = SupervisedToken(token)
                    watchdog = loop.call_later(
                        self.stuck_after_s, run_token.trip,
                        f"worker {worker.wid} watchdog fired after "
                        f"{self.stuck_after_s}s")
                try:
                    result = await loop.run_in_executor(
                        self._executor,
                        lambda w=worker, t=run_token:
                            w.execute(options, n, cancel=t))
                finally:
                    if watchdog is not None:
                        watchdog.cancel()
                outcome.iterations = result.iterations
                now = loop.time()
                if result.kind == "ok":
                    worker.breaker.record_success()
                    outcome.status = "degraded" if result.report.degraded \
                        else "completed"
                    outcome.x = result.report.x
                    outcome.retries = result.report.retries
                    if result.report.x is not None:
                        if self.results is not None:
                            digest = self.results.save(outcome.request_id,
                                                       result.report.x)
                        elif self.journal is not None:
                            digest = solution_digest(result.report.x)
                    return outcome
                if result.kind in ("cancelled", "deadline_exceeded"):
                    worker.breaker.record_success()  # worker is healthy
                    if result.kind == "cancelled" \
                            and token.reason == _DEADLINE_REASON:
                        outcome.status = "deadline_exceeded"
                    else:
                        outcome.status = result.kind
                    outcome.error_class = result.error_class
                    outcome.error_message = str(result.error)[:200]
                    return outcome
                if result.kind in ("stuck", "retryable"):
                    # Count it against this worker and hedge the request
                    # onto a different one while dispatches remain.
                    worker.breaker.record_failure(now)
                    avoid = worker.wid
                    outcome.status = "failed"
                    outcome.error_class = result.error_class
                    outcome.error_message = str(result.error)[:200]
                    continue
                worker.breaker.record_success()  # solve failed, worker fine
                outcome.status = "failed"
                outcome.error_class = result.error_class
                outcome.error_message = str(result.error)[:200]
                return outcome
            return outcome
        finally:
            self._inflight -= 1
            if timer is not None:
                timer.cancel()
            outcome.finish_s = loop.time()
            terminal = {"type": "terminal",
                        "request_id": outcome.request_id,
                        "status": outcome.status,
                        "finish_s": outcome.finish_s,
                        "key": idempotency_key, "digest": digest,
                        "solver": outcome.solver}
            self._journal(terminal)
            if digest and idempotency_key \
                    and outcome.status in ("completed", "degraded"):
                self._completed_keys.setdefault(idempotency_key, terminal)
