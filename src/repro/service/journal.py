"""Crash-consistent write-ahead journal for service requests.

Every request lifecycle transition the engine takes — ``accepted``,
``shed``, ``dispatched``, ``attempt``, ``terminal`` — is framed and
appended here *before* the engine acts on it, so a ``kill -9`` of the
service process can lose at most the one record whose bytes were still
in flight.  On restart the engine replays the journal deterministically
(see :mod:`repro.service.recovery`).

Format
------
A journal is a directory of segments.  Each record is a *frame*::

    <u32 payload length> <u32 CRC32(payload)> <payload>

with the payload a canonical JSON object (sorted keys, compact
separators) — canonical so that byte equality of frames is exactly
semantic equality of records, which is what replay verification leans
on.  The active segment is ``wal-NNNNNN.open``; once it holds
``segment_records`` records it is fsynced and atomically renamed to
``wal-NNNNNN.log`` (then the directory is fsynced), so a *sealed*
segment is durable and complete by construction.

Torn tails
----------
A SIGKILL mid-append leaves a partial frame at the end of the active
segment.  That is the expected crash signature, not corruption: on open
the tail is healed — parsing stops at the last intact frame, a
structured warning is recorded, and the file is truncated back to the
valid prefix before new appends.  A bad frame in a *sealed* segment, by
contrast, raises :class:`~repro.utils.errors.JournalError`: sealed
bytes were fsynced before the rename, so damage there is bit rot the
journal must not paper over.

Replay verification
-------------------
Recovery re-runs the engine trajectory and re-offers every record via
:meth:`RequestJournal.append`.  While the internal cursor is inside the
replayed prefix, ``append`` *verifies* instead of writing — byte-equal
frames advance the cursor for free; a divergent frame raises
``JournalError`` (the "deterministic" re-run was not).  Past the
prefix, appends hit disk again.  One code path, exactly-once effects.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import zlib
from pathlib import Path

from repro.utils.errors import JournalError

__all__ = ["RequestJournal", "encode_record", "scan_journal",
           "SEGMENT_RECORDS"]

_HEADER = struct.Struct("<II")

#: records per segment before an fsync+rename roll
SEGMENT_RECORDS = 64

_KILL_MODES = ("clean", "torn")


def encode_record(record: dict) -> bytes:
    """Canonical JSON payload bytes for ``record``.

    Canonicalisation (sorted keys, compact separators) makes payload
    byte equality coincide with record equality, so replay verification
    is a ``bytes`` compare instead of a structural diff.
    """
    try:
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"journal record is not JSON-serializable: {exc}") from exc
    return payload


def _parse(data: bytes):
    """Parse frames; return ``(records, payloads, valid_end, error)``.

    ``error`` is ``None`` for a clean parse, else a human-readable
    description of the first bad frame; ``valid_end`` is the byte offset
    of the last intact frame boundary either way.
    """
    records: list[dict] = []
    payloads: list[bytes] = []
    off, n = 0, len(data)
    while off < n:
        if off + _HEADER.size > n:
            return records, payloads, off, f"torn frame header at byte {off}"
        length, crc = _HEADER.unpack_from(data, off)
        start = off + _HEADER.size
        end = start + length
        if end > n:
            return (records, payloads, off,
                    f"torn payload at byte {off} ({length} byte(s) framed, "
                    f"{n - start} present)")
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, payloads, off, f"CRC32 mismatch at byte {off}"
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return records, payloads, off, f"undecodable record at byte {off}"
        records.append(record)
        payloads.append(bytes(payload))
        off = end
    return records, payloads, off, None


def _segment_index(path: Path) -> int:
    try:
        return int(path.stem.split("-", 1)[1])
    except (IndexError, ValueError) as exc:
        raise JournalError(f"unrecognized segment name {path.name}") from exc


def scan_journal(root) -> tuple[list[dict], list[str]]:
    """Read-only audit: all records plus any torn-tail warnings.

    Never mutates the journal directory — safe for post-mortem checks
    (the soak's duplicate-solve audit) while another process owns the
    active segment.
    """
    root = Path(root)
    records: list[dict] = []
    warnings: list[str] = []
    for path in sorted(root.glob("wal-*.log")):
        recs, _, _, err = _parse(path.read_bytes())
        if err is not None:
            raise JournalError(f"sealed segment {path.name} corrupt: {err}")
        records.extend(recs)
    for path in sorted(root.glob("wal-*.open")):
        recs, _, _, err = _parse(path.read_bytes())
        if err is not None:
            warnings.append(f"torn tail in {path.name}: {err} "
                            f"(kept {len(recs)} record(s))")
        records.extend(recs)
    return records, warnings


class RequestJournal:
    """Segmented, CRC32-framed write-ahead log with replay verification."""

    def __init__(self, root, *, segment_records: int = SEGMENT_RECORDS):
        if segment_records < 1:
            raise JournalError(
                f"segment_records must be >= 1, got {segment_records}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        #: structured torn-tail warnings from the last open
        self.warnings: list[str] = []
        self._records: list[dict] = []
        self._payloads: list[bytes] = []
        self._cursor = 0
        self._kill_after: int | None = None
        self._kill_mode = "clean"
        self._load()

    # -- open / replay ---------------------------------------------------------

    def _load(self) -> None:
        sealed = sorted(self.root.glob("wal-*.log"))
        indices = [_segment_index(p) for p in sealed]
        if indices != list(range(len(sealed))):
            raise JournalError(
                f"sealed segments are not contiguous: {indices}")
        for path in sealed:
            recs, pays, _, err = _parse(path.read_bytes())
            if err is not None:
                raise JournalError(
                    f"sealed segment {path.name} corrupt: {err}")
            self._records.extend(recs)
            self._payloads.extend(pays)
        active = sorted(self.root.glob("wal-*.open"))
        if len(active) > 1:
            raise JournalError(
                f"multiple active segments: {[p.name for p in active]}")
        if active:
            path = active[0]
            index = _segment_index(path)
            if index != len(sealed):
                raise JournalError(
                    f"active segment {path.name} does not follow the "
                    f"{len(sealed)} sealed segment(s)")
            data = path.read_bytes()
            recs, pays, valid_end, err = _parse(data)
            if err is not None:
                self.warnings.append(
                    f"torn tail healed in {path.name}: {err} "
                    f"(kept {len(recs)} record(s))")
            self._records.extend(recs)
            self._payloads.extend(pays)
            self._active_index = index
            self._active_path = path
            self._active_records = len(recs)
            self._fh = open(path, "r+b")
            self._fh.seek(valid_end)
            self._fh.truncate()
        else:
            self._active_index = len(sealed)
            self._open_segment()
        self._count = len(self._records)

    # -- segment management ----------------------------------------------------

    def _open_segment(self) -> None:
        self._active_path = self.root / f"wal-{self._active_index:06d}.open"
        self._fh = open(self._active_path, "ab")
        self._active_records = 0

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _seal_segment(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        os.rename(self._active_path, self._active_path.with_suffix(".log"))
        self._fsync_dir()
        self._active_index += 1
        self._open_segment()

    # -- the one append path ---------------------------------------------------

    @property
    def record_count(self) -> int:
        """Durable records on disk (replayed prefix + new appends)."""
        return self._count

    @property
    def records(self) -> list[dict]:
        """All records in order (parsed copies; do not mutate)."""
        return list(self._records)

    def fast_forward(self) -> None:
        """Skip replay verification: subsequent appends are new records.

        For append-only owners — the wall-clock asyncio front-end, whose
        trajectory is not deterministically replayable.  The virtual-time
        engine must *not* call this: verify-or-append is what catches a
        divergent recovery re-run.
        """
        self._cursor = len(self._records)

    def append(self, record: dict) -> dict:
        """Verify-or-append ``record``; return its normalized form.

        Inside the replayed prefix this verifies byte equality and
        writes nothing; past it, the frame is appended and flushed.
        """
        payload = encode_record(record)
        if self._cursor < len(self._records):
            if payload != self._payloads[self._cursor]:
                held = self._records[self._cursor]
                raise JournalError(
                    f"replay divergence at record {self._cursor}: journal "
                    f"holds kind={held.get('kind')!r} "
                    f"request={held.get('request_id')!r}, replay produced "
                    f"kind={record.get('kind')!r} "
                    f"request={record.get('request_id')!r}")
            normalized = self._records[self._cursor]
            self._cursor += 1
            return normalized
        if self._active_records >= self.segment_records:
            self._seal_segment()
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if self._kill_after is not None and self._count + 1 >= self._kill_after:
            self._die(frame, payload)
        self._fh.write(frame)
        self._fh.flush()
        normalized = json.loads(payload.decode("utf-8"))
        self._records.append(normalized)
        self._payloads.append(payload)
        self._count += 1
        self._cursor += 1
        self._active_records += 1
        return normalized

    # -- crash injection (soak harness only) -----------------------------------

    def arm_kill(self, after_records: int, mode: str = "clean") -> None:
        """SIGKILL this process when the durable count would reach
        ``after_records``.

        ``clean`` writes the fatal record fully first (the crash lands
        *between* records); ``torn`` writes only part of its frame (the
        crash lands *inside* a record, exercising tail healing).  Used
        exclusively by the kill/restart soak harness.
        """
        if mode not in _KILL_MODES:
            raise JournalError(f"unknown kill mode {mode!r}")
        if after_records < 1:
            raise JournalError(
                f"kill point must be >= 1, got {after_records}")
        self._kill_after = after_records
        self._kill_mode = mode

    def _die(self, frame: bytes, payload: bytes) -> None:
        if self._kill_mode == "torn" and len(payload) > 1:
            # Half the payload: header intact, CRC can't match.
            self._fh.write(frame[:_HEADER.size + len(payload) // 2])
        else:
            self._fh.write(frame)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    # -- lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """Force the active segment to stable storage."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush, fsync and release the active segment (left ``.open``)."""
        if self._fh.closed:
            return
        self.sync()
        self._fh.close()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
