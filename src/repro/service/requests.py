"""Request/outcome records of the multi-tenant solve service.

A :class:`SolveRequest` is a deck-style solve submission: the deck text
is parsed *at dispatch time* (not at admission), so a poison deck costs
the service one structured ``failed`` outcome instead of crashing the
front-end.  A :class:`RequestOutcome` is the terminal record every
request ends in — the engine guarantees exactly one of the
:data:`STATUSES` for every admitted or shed request, which is what the
sweep's "zero unclassified failures" acceptance gate asserts on.

All times are virtual seconds on the engine's discrete-event clock, so
same-seed runs produce byte-identical outcome ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Terminal request states.  ``completed``/``degraded`` carry a converged
#: solution (degraded = the options were laddered down under pressure or
#: the solver degraded internally); ``shed`` was refused at admission;
#: ``deadline_exceeded``/``cancelled`` aborted cooperatively mid-solve;
#: ``failed`` carries a structured error class + message.
STATUSES = ("completed", "degraded", "shed", "deadline_exceeded",
            "cancelled", "failed")


@dataclass(frozen=True)
class SolveRequest:
    """One tenant's deck-style solve submission.

    ``deadline_s`` and ``cancel_after_s`` are relative to ``arrival_s``;
    ``None`` disables them.  ``max_attempts`` bounds service-level
    re-dispatches of retryable failures (worker crash, exhausted comm
    retry budget) — distinct from the per-attempt comm-level retry
    budget inside the resilient stack.

    A non-empty ``idempotency_key`` opts the request into exactly-once
    acknowledgement: once any request bearing the key completes, later
    submissions with the same key are served the journaled result
    (status ``completed``, ``deduplicated=True``) without a solve —
    including across a crash/restart when the engine runs with a
    :class:`~repro.service.journal.RequestJournal`.
    """

    request_id: str
    tenant: str
    arrival_s: float
    deck_text: str
    n: int = 16
    deadline_s: float | None = None
    cancel_after_s: float | None = None
    max_attempts: int = 2
    chaos_trial: int = -1  #: >= 0 seeds a fault plan for this request
    chaos_crash: bool = False  #: fault plan includes a fatal rank crash
    idempotency_key: str = ""  #: non-empty: exactly-once dedup key


@dataclass
class RequestOutcome:
    """Terminal record of one request (one of :data:`STATUSES`)."""

    request_id: str
    tenant: str
    status: str
    arrival_s: float
    start_s: float = -1.0      #: first dispatch time (-1: never dispatched)
    finish_s: float = -1.0
    attempts: int = 0
    iterations: int = 0
    solver: str = ""
    degrade_steps: list = field(default_factory=list)
    shed_reason: str = ""
    error_class: str = ""
    error_message: str = ""
    cache_hit: bool = False
    worker: int = -1
    retries: int = 0           #: comm-level retries inside the stack
    idempotency_key: str = ""
    deduplicated: bool = False  #: served from a prior completion's journal
    x = None                   #: solution array (oracle input; not in ledgers)

    @property
    def latency_s(self) -> float:
        """Arrival-to-terminal virtual latency (shed requests: 0)."""
        if self.finish_s < 0:
            return 0.0
        return self.finish_s - self.arrival_s

    def to_dict(self) -> dict:
        """JSON-ready record (solution array excluded)."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "status": self.status,
            "arrival_s": self.arrival_s,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "latency_s": self.latency_s,
            "attempts": self.attempts,
            "iterations": self.iterations,
            "solver": self.solver,
            "degrade_steps": list(self.degrade_steps),
            "shed_reason": self.shed_reason,
            "error_class": self.error_class,
            "error_message": self.error_message,
            "cache_hit": self.cache_hit,
            "worker": self.worker,
            "retries": self.retries,
            "idempotency_key": self.idempotency_key,
            "deduplicated": self.deduplicated,
        }
