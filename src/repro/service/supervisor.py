"""Worker supervision: liveness heartbeats and stuck-dispatch detection.

A dispatch can wedge without failing — a solver spinning past any useful
iteration count, a worker thread blocked on a peer that will never send.
The supervisor turns "no progress" into a first-class, *cooperative*
abort: every supervised dispatch runs under a :class:`SupervisedToken`
whose ``check``/``poll`` calls double as **heartbeats**, and the token
raises :class:`~repro.utils.errors.WorkerStuck` (a
:class:`~repro.utils.errors.Cancelled` subclass, so rank-coherent at an
iteration boundary) when either

- the dispatch exceeds its **iteration allowance** — the deterministic
  engine derives it from ``ServiceConfig.stuck_after_s`` and the
  per-iteration cost model, so virtual-time runs stay byte-reproducible;
- a wall-clock watchdog :meth:`~SupervisedToken.trip`\\ s it — the
  asyncio front-end arms a timer per dispatch.

The engine classifies a ``WorkerStuck`` result like a retryable failure:
the worker's breaker records the failure and the request re-dispatches
(hedged, preferring a different worker) while attempts remain.

:class:`Supervisor` is the bookkeeping side: per-worker ``heartbeat``
timestamps and a ``scan`` that trips every token silent for longer than
the allowance — what the front-end's watchdog loop calls.
"""

from __future__ import annotations

from repro.utils.errors import WorkerStuck

__all__ = ["SupervisedToken", "Supervisor"]


class SupervisedToken:
    """Cancel-token wrapper adding a progress allowance and a trip wire.

    Duck-types the :class:`~repro.service.cancel.CancelToken` surface
    (``check``/``poll``/``cancel``), so it drops into ``solve_linear``
    and the comm stack unchanged.  The inner token's own deadline /
    client-cancel semantics always win — they are checked first — and
    an un-tripped token with ``iteration_allowance=None`` is
    bit-transparent.
    """

    __slots__ = ("inner", "iteration_allowance", "heartbeats",
                 "last_iteration", "_tripped", "_trip_reason")

    def __init__(self, inner, iteration_allowance: int | None = None):
        self.inner = inner
        if iteration_allowance is not None and iteration_allowance < 1:
            iteration_allowance = 1
        self.iteration_allowance = iteration_allowance
        self.heartbeats = 0
        self.last_iteration = -1
        self._tripped = False
        self._trip_reason = ""

    # -- watchdog side ---------------------------------------------------------

    def trip(self, reason: str = "worker stuck") -> None:
        """Declare the dispatch stuck (thread-safe, idempotent).

        The worker observes it at its next ``check``/``poll`` and raises
        :class:`WorkerStuck` — cooperative, so a genuinely live worker
        aborts cleanly at an iteration boundary.
        """
        if not self._tripped:
            self._trip_reason = reason
            self._tripped = True

    @property
    def tripped(self) -> bool:
        return self._tripped

    # -- solver side -----------------------------------------------------------

    def check(self, iteration: int) -> None:
        self.heartbeats += 1
        self.last_iteration = max(self.last_iteration, iteration)
        self.inner.check(iteration)
        if self._tripped:
            raise WorkerStuck(
                f"{self._trip_reason or 'worker stuck'} "
                f"at iteration {iteration}", iteration=iteration)
        if self.iteration_allowance is not None \
                and iteration >= self.iteration_allowance:
            raise WorkerStuck(
                f"no progress after {iteration} iterations "
                f"(allowance {self.iteration_allowance})",
                iteration=iteration)

    def poll(self) -> None:
        self.heartbeats += 1
        self.inner.poll()
        if self._tripped:
            raise WorkerStuck(self._trip_reason or "worker stuck",
                              iteration=-1)

    def cancel(self, reason: str = "client cancelled") -> None:
        self.inner.cancel(reason)

    @property
    def cancel_requested(self) -> bool:
        return self.inner.cancel_requested

    @property
    def reason(self) -> str:
        return getattr(self.inner, "reason", "")


class Supervisor:
    """Per-worker liveness ledger + watchdog sweep.

    ``watch`` registers a dispatch's token; every subsequent
    ``heartbeat(wid, now)`` refreshes its last-seen time (the front-end
    calls it as executor futures report progress; the engine's virtual
    clock feeds ``now`` directly).  ``scan(now)`` trips every watched
    token silent for longer than ``stuck_after_s`` and returns the
    culprit worker ids — callers then rely on the cooperative
    :class:`WorkerStuck` abort plus their breaker/retry machinery.
    """

    def __init__(self, stuck_after_s: float):
        self.stuck_after_s = float(stuck_after_s)
        self._watched: dict[int, tuple[SupervisedToken, float]] = {}
        self.trips = 0

    def watch(self, wid: int, token: SupervisedToken, now: float) -> None:
        self._watched[wid] = (token, now)

    def heartbeat(self, wid: int, now: float) -> None:
        entry = self._watched.get(wid)
        if entry is not None:
            self._watched[wid] = (entry[0], now)

    def clear(self, wid: int) -> None:
        self._watched.pop(wid, None)

    def last_seen(self, wid: int) -> float | None:
        entry = self._watched.get(wid)
        return entry[1] if entry is not None else None

    def scan(self, now: float) -> list[int]:
        """Trip every dispatch silent past the allowance; return its wids."""
        if self.stuck_after_s <= 0:
            return []
        stuck = []
        for wid, (token, seen) in list(self._watched.items()):
            if now - seen >= self.stuck_after_s and not token.tripped:
                token.trip(
                    f"worker {wid} heartbeat silent for "
                    f"{now - seen:.3f}s (allowance {self.stuck_after_s}s)")
                self.trips += 1
                stuck.append(wid)
        return stuck
