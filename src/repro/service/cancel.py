"""Cooperative cancellation for in-flight solves.

A :class:`CancelToken` is handed to a solve (``solve_linear(...,
cancel=token)``) and checked **once per outer iteration boundary**, before
any of the iteration's communication is issued.  Two triggers fire it:

- **Deadline expiry** — the token carries an *iteration budget* computed
  up front from the request deadline and the engine's per-iteration cost
  model.  Expiry is then a pure function of the iteration counter, so in
  an SPMD solve every rank takes the same decision at the same boundary.
- **Client cancellation** — :meth:`CancelToken.cancel` sets a flag from
  any thread.  The first rank to observe it *latches* its own iteration
  number; every other rank raises when it reaches that same boundary.

Why rank-coherence matters: each solver iteration body both begins and
ends with collectives (the matvec's halo exchange + the convergence
reductions), so when one rank stands at boundary ``k`` every peer has
finished boundary ``k-1``'s communication and issued none of boundary
``k``'s.  Raising at the same ``k`` on all ranks therefore leaves **no
pending point-to-point message and no wedged barrier** — the sanitizer's
quiescence check passes, guard checkpoints written before ``k`` stay
restorable, and the world needs no abort-side cleanup.  This is the
property ``tests/test_cancel.py`` pins.

The token is solver-agnostic duck typing: solvers call ``check(i)`` and
communicator layers call ``poll()``; nothing in :mod:`repro.solvers`
imports this module.  An **inert** token (no budget, never cancelled) is
bit-transparent: the solve's iterates, traces and contract counts are
identical to running with ``cancel=None``.
"""

from __future__ import annotations

import threading

from repro.utils.errors import Cancelled, DeadlineExceeded

__all__ = ["CancelToken", "Cancelled", "DeadlineExceeded",
           "ScheduledCancel"]


class CancelToken:
    """Cooperative, rank-coherent cancellation handle.

    Parameters
    ----------
    iteration_budget:
        Raise :class:`DeadlineExceeded` at the first iteration boundary
        ``>=`` this count (``None``: no deadline).  The service engine
        derives it from ``(deadline - now) / cost_per_iteration`` so the
        decision is deterministic and identical on every rank.
    deadline_s:
        The absolute (virtual-clock) deadline the budget was derived
        from; carried into the error for structured reporting only.
    """

    __slots__ = ("iteration_budget", "deadline_s", "reason",
                 "_requested", "_cancelled_at", "_lock")

    def __init__(self, iteration_budget: int | None = None,
                 deadline_s: float | None = None):
        if iteration_budget is not None and iteration_budget < 0:
            iteration_budget = 0
        self.iteration_budget = iteration_budget
        self.deadline_s = deadline_s
        self.reason = ""
        self._requested = False
        #: iteration boundary latched by the first rank to observe the
        #: cancel flag; every rank raises at exactly this boundary.
        self._cancelled_at: int | None = None
        self._lock = threading.Lock()

    # -- client side -----------------------------------------------------------

    def cancel(self, reason: str = "client cancelled") -> None:
        """Request cancellation (thread-safe, idempotent)."""
        self.reason = self.reason or reason
        self._requested = True

    @property
    def cancel_requested(self) -> bool:
        return self._requested

    # -- solver side -----------------------------------------------------------

    def check(self, iteration: int) -> None:
        """Raise if the solve must stop at this iteration boundary.

        Deadline expiry is a pure function of ``iteration``, so it is
        trivially identical across ranks.  Client cancellation latches
        the *first* observer's boundary: when rank A latches at ``k``,
        every peer has completed iteration ``k-1``'s collectives (A could
        not have finished them alone) and none of iteration ``k``'s (A
        has not entered it) — so each peer's next check is also ``k``
        and all ranks raise together, quiescent.
        """
        if self.iteration_budget is not None \
                and iteration >= self.iteration_budget:
            raise DeadlineExceeded(
                f"deadline exceeded at iteration {iteration} "
                f"(budget {self.iteration_budget})",
                iteration=iteration, deadline_s=self.deadline_s)
        if self._requested and self._cancelled_at is None:
            with self._lock:
                if self._cancelled_at is None:
                    self._cancelled_at = iteration
        at = self._cancelled_at
        if at is not None and iteration >= at:
            raise Cancelled(
                f"{self.reason or 'cancelled'} at iteration {at}",
                iteration=at)

    def poll(self) -> None:
        """Raise :class:`Cancelled` if a client cancel is pending.

        Used by communicator layers (the retry loop) that have no
        iteration counter: a cancelled request must not keep burning its
        retry budget against a dead peer.  Only the *requested* flag is
        consulted — deadline budgets stay an iteration-boundary decision
        so the comm layer cannot fire them rank-incoherently.
        """
        if self._requested:
            raise Cancelled(self.reason or "cancelled", iteration=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CancelToken(budget={self.iteration_budget}, "
                f"requested={self._requested}, "
                f"latched={self._cancelled_at})")


class ScheduledCancel:
    """Deterministic stand-in for a mid-solve client cancel.

    Wraps a :class:`CancelToken` and fires its :meth:`~CancelToken.cancel`
    once the solve reaches ``cancel_at_iteration`` — modelling a client
    whose cancel lands while that iteration runs, without any wall-clock
    race.  The service engine converts a request's ``cancel_after_s``
    into the boundary via its per-iteration cost model; tests use it to
    pin the latch-and-raise behaviour at an exact boundary.  Presents
    the same ``check``/``poll``/``cancel`` duck-typed surface, so it
    drops in anywhere a token does.
    """

    def __init__(self, token: CancelToken, cancel_at_iteration: int,
                 reason: str = "client cancelled"):
        self.token = token
        self.cancel_at_iteration = max(0, cancel_at_iteration)
        self.reason = reason

    def check(self, iteration: int) -> None:
        if iteration >= self.cancel_at_iteration:
            self.token.cancel(self.reason)
        self.token.check(iteration)

    def poll(self) -> None:
        self.token.poll()

    def cancel(self, reason: str = "client cancelled") -> None:
        self.token.cancel(reason)

    @property
    def cancel_requested(self) -> bool:
        return self.token.cancel_requested
