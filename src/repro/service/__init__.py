"""repro.service — multi-tenant solve engine.

Turns the solver library into a service: concurrent deck-style solve
requests with per-request **deadlines** (cooperative, rank-coherent
cancellation at iteration boundaries), **admission control** (per-tenant
token buckets, bounded queues, structured load shedding), **circuit
breakers + hedged retry** over SPMD worker groups,
**overload-graceful degradation** (solver/depth/backend ladder) and an
**LRU setup cache** for eigenvalue bounds and block-Jacobi
factorizations.

Two execution surfaces share these parts:

- :class:`~repro.service.engine.ServiceEngine` — deterministic
  discrete-event execution on virtual time (capacity planning, chaos
  validation, the ``SERVICE_<n>.json`` ledgers);
- :class:`~repro.service.front.SolveService` — an asyncio front-end on
  real time and a thread pool (``repro serve``, examples).

Both surfaces are optionally **crash-consistent**: a
:class:`~repro.service.journal.RequestJournal` (CRC32-framed segmented
write-ahead log) records every lifecycle transition before the service
acts on it, a :class:`~repro.service.recovery.ResultStore` persists
converged solutions, and on restart the engine replays the journal with
exactly-once semantics — acknowledged completions are served from the
durable digest, the in-flight crash victim resumes mid-solve from its
guard shards (``resume="exact"``), and a
:class:`~repro.service.supervisor.Supervisor` watches dispatch liveness.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import SetupCache, fingerprint
from repro.service.cancel import (
    CancelToken,
    Cancelled,
    DeadlineExceeded,
    ScheduledCancel,
)
from repro.service.degrade import LADDER, degrade_for_pressure
from repro.service.engine import (
    ServiceConfig,
    ServiceEngine,
    iteration_cost_s,
)
from repro.service.front import SolveService
from repro.service.journal import RequestJournal, encode_record, scan_journal
from repro.service.quota import TokenBucket
from repro.service.recovery import (
    RecoveryWarning,
    ReplayIndex,
    ResultStore,
    deck_fingerprint,
    solution_digest,
)
from repro.service.requests import STATUSES, RequestOutcome, SolveRequest
from repro.service.supervisor import SupervisedToken, Supervisor
from repro.service.worker import ExecutionResult, WorkerGroup
from repro.utils.errors import JournalError, WorkerStuck

__all__ = [
    "CancelToken",
    "Cancelled",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ExecutionResult",
    "JournalError",
    "LADDER",
    "RecoveryWarning",
    "ReplayIndex",
    "RequestJournal",
    "RequestOutcome",
    "ResultStore",
    "STATUSES",
    "ScheduledCancel",
    "ServiceConfig",
    "ServiceEngine",
    "SetupCache",
    "SolveRequest",
    "SolveService",
    "SupervisedToken",
    "Supervisor",
    "TokenBucket",
    "WorkerGroup",
    "WorkerStuck",
    "deck_fingerprint",
    "degrade_for_pressure",
    "encode_record",
    "fingerprint",
    "iteration_cost_s",
    "scan_journal",
    "solution_digest",
]
