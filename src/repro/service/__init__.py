"""repro.service — multi-tenant solve engine.

Turns the solver library into a service: concurrent deck-style solve
requests with per-request **deadlines** (cooperative, rank-coherent
cancellation at iteration boundaries), **admission control** (per-tenant
token buckets, bounded queues, structured load shedding), **circuit
breakers + hedged retry** over SPMD worker groups,
**overload-graceful degradation** (solver/depth/backend ladder) and an
**LRU setup cache** for eigenvalue bounds and block-Jacobi
factorizations.

Two execution surfaces share these parts:

- :class:`~repro.service.engine.ServiceEngine` — deterministic
  discrete-event execution on virtual time (capacity planning, chaos
  validation, the ``SERVICE_<n>.json`` ledgers);
- :class:`~repro.service.front.SolveService` — an asyncio front-end on
  real time and a thread pool (``repro serve``, examples).
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import SetupCache, fingerprint
from repro.service.cancel import (
    CancelToken,
    Cancelled,
    DeadlineExceeded,
    ScheduledCancel,
)
from repro.service.degrade import LADDER, degrade_for_pressure
from repro.service.engine import (
    ServiceConfig,
    ServiceEngine,
    iteration_cost_s,
)
from repro.service.front import SolveService
from repro.service.quota import TokenBucket
from repro.service.requests import STATUSES, RequestOutcome, SolveRequest
from repro.service.worker import ExecutionResult, WorkerGroup

__all__ = [
    "CancelToken",
    "Cancelled",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ExecutionResult",
    "LADDER",
    "RequestOutcome",
    "STATUSES",
    "ScheduledCancel",
    "ServiceConfig",
    "ServiceEngine",
    "SetupCache",
    "SolveRequest",
    "SolveService",
    "TokenBucket",
    "WorkerGroup",
    "degrade_for_pressure",
    "fingerprint",
    "iteration_cost_s",
]
