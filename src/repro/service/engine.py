"""Deterministic multi-tenant solve engine.

The engine is a discrete-event scheduler over **virtual time**: requests
arrive at seeded virtual timestamps, admission control (per-tenant token
buckets + a bounded queue) sheds overload, and a pool of
:class:`~repro.service.worker.WorkerGroup` slots executes the solves —
**real** SPMD solves, run synchronously in event order, whose *virtual*
duration is charged from a per-iteration cost model plus the resilient
stack's injected latency.  Because no wall clock is consulted anywhere,
two same-seed runs produce byte-identical outcome ledgers — which is how
the service sweep pins hundreds of mixed chaos requests in CI.

Per request the engine provides:

- **deadlines** — converted up front into an iteration budget on a
  :class:`~repro.service.cancel.CancelToken`, so expiry is a pure
  function of the iteration counter and rank-coherent;
- **client cancels** — a ``cancel_after_s`` lands as a
  :class:`~repro.service.cancel.ScheduledCancel` at the matching
  iteration boundary;
- **admission control** — token-bucket quota per tenant, bounded queue,
  structured shed outcomes;
- **circuit breaking + hedged retry** — per-worker breakers route
  around crashing groups; retryable failures re-dispatch with backoff,
  preferring a *different* worker;
- **graceful degradation** — queue-pressure watermarks ladder options
  down (:mod:`repro.service.degrade`);
- **setup caching** — eigenvalue bounds / block-Jacobi factorizations
  reused across requests (:mod:`repro.service.cache`).

Every request terminates in exactly one
:data:`~repro.service.requests.STATUSES` — the engine has no
"unclassified" exit path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.observe.metrics import MetricsRegistry
from repro.physics.deck import deck_solver_options, parse_deck_text
from repro.resilience.chaos import random_fault_plan
from repro.service.cancel import CancelToken, ScheduledCancel
from repro.service.cache import SetupCache
from repro.service.degrade import degrade_for_pressure
from repro.service.quota import TokenBucket
from repro.service.recovery import (
    ReplayIndex,
    deck_fingerprint,
    solution_digest,
    synthesize_result,
)
from repro.service.requests import RequestOutcome, SolveRequest
from repro.service.supervisor import SupervisedToken
from repro.service.worker import WorkerGroup
from repro.solvers.driver import SolveSetup
from repro.solvers.eigen import EigenBounds
from repro.utils.errors import ConfigurationError, JournalError

#: Virtual seconds one solver iteration costs per mesh cell.
_CELL_COST_S = 1e-7

#: Relative per-iteration weight of each outer solver iteration (PPCG
#: outer iterations run ``inner_steps`` Chebyshev applications, hence the
#: large factor).
_SOLVER_WEIGHT = {
    "jacobi": 0.6,
    "cg": 1.0,
    "cg_fused": 0.9,
    "chebyshev": 1.1,
    "ppcg": 5.0,
    "dcg": 1.5,
    "mgcg": 4.0,
}


def iteration_cost_s(solver: str, n: int) -> float:
    """Virtual cost of one outer iteration of ``solver`` on an n×n mesh."""
    return _SOLVER_WEIGHT.get(solver, 1.0) * _CELL_COST_S * n * n


@dataclass(frozen=True)
class ServiceConfig:
    """Engine knobs (all virtual-time)."""

    workers: int = 2
    group_size: int = 1
    max_queue: int = 8
    quota_rate: float = 50.0        #: tokens / virtual second / tenant
    quota_burst: float = 10.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.5
    retry_backoff_s: float = 0.01   #: service-level re-dispatch backoff
    comm_attempts: int = 5          #: retry budget inside the comm stack
    degrade_low: float = 0.5        #: queue-pressure watermark → level 1
    degrade_high: float = 0.8       #: queue-pressure watermark → level 2
    degrade_enabled: bool = True
    cache_entries: int = 32
    cache_enabled: bool = True
    overhead_s: float = 2e-4        #: fixed dispatch/teardown charge
    failure_cost_s: float = 0.01    #: virtual charge of a failed attempt
    chaos_seed: int = 0             #: base seed for per-request fault plans
    #: Supervisor liveness allowance: a dispatch running longer than this
    #: (virtual seconds, converted to an iteration allowance up front) is
    #: declared stuck, cancelled via :class:`WorkerStuck` and
    #: re-dispatched under the breaker/hedging machinery.  0 disables.
    stuck_after_s: float = 0.0


@dataclass
class _Pending:
    """One admitted request's mutable dispatch state."""

    req: SolveRequest
    outcome: RequestOutcome
    attempts: int = 0
    last_worker: int = -1
    options: object = None          #: parsed SolverOptions (lazy)
    parse_error: BaseException | None = None
    degrade_steps: list = field(default_factory=list)
    digest: str = ""                #: converged solution's content digest


class ServiceEngine:
    """Run a batch of requests to terminal outcomes on virtual time."""

    def __init__(self, config: ServiceConfig | None = None, tracer=None,
                 journal=None, results=None, checkpoint_root=None):
        """``journal``/``results``/``checkpoint_root`` opt into crash
        consistency (all default off → byte-identical legacy behaviour):

        - ``journal`` — a :class:`~repro.service.journal.RequestJournal`;
          every lifecycle transition is framed to it before the engine
          acts, and a journal opened over surviving records puts the
          engine in recovery: the deterministic re-run *verifies* the
          journaled prefix and skips every solve whose classified
          ``attempt`` record is already durable;
        - ``results`` — a :class:`~repro.service.recovery.ResultStore`
          persisting converged solutions, so replayed/deduplicated
          completions are served without re-solving;
        - ``checkpoint_root`` — directory under which guard-enabled
          requests get per-request durable solver shards
          (``<root>/<request_id>/``); the in-flight crash victim then
          resumes mid-solve with ``resume="exact"``.
        """
        self.config = config if config is not None else ServiceConfig()
        self.metrics = MetricsRegistry()
        self.cache = SetupCache(self.config.cache_entries,
                                metrics=self.metrics)
        self.workers = [
            WorkerGroup(i, group_size=self.config.group_size,
                        max_attempts=self.config.comm_attempts)
            for i in range(self.config.workers)
        ]
        for w in self.workers:
            w.breaker.failure_threshold = self.config.breaker_threshold
            w.breaker.cooldown_s = self.config.breaker_cooldown_s
        self.buckets: dict[str, TokenBucket] = {}
        self.now = 0.0
        if tracer is None:
            from repro.observe.trace import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer
        self._heap: list = []
        self._seq = 0
        self._queue: list[_Pending] = []
        self._outcomes: dict[str, RequestOutcome] = {}
        self.journal = journal
        self.results = results
        self.checkpoint_root = (Path(checkpoint_root)
                                if checkpoint_root is not None else None)
        self.replay = ReplayIndex.from_records(
            journal.records if journal is not None else [])
        #: idempotency key -> terminal record of the acknowledged
        #: completion (seeded from the journal, grown live)
        self._completed_keys: dict[str, dict] = dict(
            self.replay.completed_by_key)
        self.replayed_attempts = 0
        self.resumed_requests: list[str] = []
        self.deduplicated = 0

    # -- event plumbing --------------------------------------------------------

    def _push(self, when: float, kind: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, kind, payload))

    def _count(self, name: str) -> None:
        self.metrics.counter(f"service.{name}").inc()

    def _journal(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def recovery_summary(self) -> dict:
        """Runtime recovery statistics (crash-*variant*: not for ledgers)."""
        return {
            "journal_records": (self.journal.record_count
                                if self.journal is not None else 0),
            "journal_warnings": (list(self.journal.warnings)
                                 if self.journal is not None else []),
            "replayed_prefix": self.replay.record_count,
            "replayed_attempts": self.replayed_attempts,
            "resumed_requests": list(self.resumed_requests),
            "deduplicated": self.deduplicated,
        }

    # -- public API ------------------------------------------------------------

    def run(self, requests: list[SolveRequest]) -> list[RequestOutcome]:
        """Drive every request to a terminal outcome; arrival order out."""
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        for req in ordered:
            self._push(req.arrival_s, "arrival", req)
        while self._heap or self._queue:
            if not self._heap:
                # Queue non-empty but nothing scheduled: every worker is
                # idle behind an open breaker.  Wake at the earliest
                # cooldown expiry so probes (half-open) drain the queue —
                # breakers always reopen, so progress is guaranteed.
                wake = min(w.breaker._opened_at + w.breaker.cooldown_s
                           for w in self.workers)
                self._push(max(wake, self.now), "wake", None)
            when, _, kind, payload = heapq.heappop(self._heap)
            self.now = when
            if kind == "arrival":
                self._admit(payload)
            elif kind == "complete":
                self._complete(*payload)
            elif kind == "retry":
                self._enqueue(payload)
            self._dispatch()
        return [self._outcomes[r.request_id] for r in ordered]

    # -- admission -------------------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self.buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.quota_rate,
                                 self.config.quota_burst)
            self.buckets[tenant] = bucket
        return bucket

    def _admit(self, req: SolveRequest) -> None:
        outcome = RequestOutcome(request_id=req.request_id,
                                 tenant=req.tenant, status="shed",
                                 arrival_s=req.arrival_s,
                                 idempotency_key=req.idempotency_key)
        self._outcomes[req.request_id] = outcome
        # Exactly-once acknowledgement: a key that already completed is
        # answered from the journaled digest before quota is consulted —
        # a client retrying an acknowledged request must not be charged,
        # shed, or (worse) solved twice.  During recovery the journaled
        # admission decision wins: the seeded key map also knows about
        # completions that happened *after* this arrival originally.
        adm = self.replay.admissions.get(req.request_id)
        if adm is not None:
            done = (self._completed_keys.get(req.idempotency_key)
                    if adm.get("type") == "dedup" else None)
            if adm.get("type") == "dedup" and done is None:
                raise JournalError(
                    f"journal dedups {req.request_id} against key "
                    f"{req.idempotency_key!r}, but no completion for that "
                    f"key precedes it")
        else:
            done = (self._completed_keys.get(req.idempotency_key)
                    if req.idempotency_key else None)
        if done is not None:
            outcome.status = "completed"
            outcome.deduplicated = True
            outcome.solver = done.get("solver", "")
            outcome.finish_s = self.now
            if self.results is not None and done.get("digest"):
                outcome.x = self.results.load(done["request_id"],
                                              done["digest"])
            self.deduplicated += 1
            self._count("deduplicated")
            self._journal({"type": "dedup", "request_id": req.request_id,
                           "key": req.idempotency_key,
                           "source": done["request_id"], "now": self.now})
            return
        if not self._bucket(req.tenant).try_acquire(self.now):
            outcome.shed_reason = "quota"
            outcome.finish_s = self.now
            self._count("shed.quota")
            self._journal({"type": "shed", "request_id": req.request_id,
                           "reason": "quota", "now": self.now})
            return
        if len(self._queue) >= self.config.max_queue:
            outcome.shed_reason = "queue_full"
            outcome.finish_s = self.now
            self._count("shed.queue")
            self._journal({"type": "shed", "request_id": req.request_id,
                           "reason": "queue_full", "now": self.now})
            return
        self._count("admitted")
        self._journal({"type": "accepted", "request_id": req.request_id,
                       "tenant": req.tenant, "arrival_s": req.arrival_s,
                       "key": req.idempotency_key, "n": req.n,
                       "deck_sha": deck_fingerprint(req.deck_text)})
        self._enqueue(_Pending(req=req, outcome=outcome))

    def _enqueue(self, pending: _Pending) -> None:
        self._queue.append(pending)

    # -- dispatch --------------------------------------------------------------

    def _pick_worker(self, avoid: int) -> WorkerGroup | None:
        """Lowest-id idle worker whose breaker admits a dispatch.

        Hedged re-dispatch: prefer a worker other than the one that just
        failed the request, falling back to it only when it is the sole
        healthy slot.
        """
        candidates = [w for w in self.workers
                      if w.busy_until <= self.now and w.breaker.allow(self.now)]
        if not candidates:
            return None
        preferred = [w for w in candidates if w.wid != avoid]
        return (preferred or candidates)[0]

    def _pressure_level(self) -> int:
        if not self.config.degrade_enabled or self.config.max_queue <= 0:
            return 0
        pressure = len(self._queue) / self.config.max_queue
        if pressure >= self.config.degrade_high:
            return 2
        if pressure >= self.config.degrade_low:
            return 1
        return 0

    def _dispatch(self) -> None:
        while self._queue:
            worker = self._pick_worker(avoid=self._queue[0].last_worker)
            if worker is None:
                return
            pending = self._queue.pop(0)
            self._execute(pending, worker)

    def _parse(self, pending: _Pending) -> bool:
        """Parse the deck once; False means the request is poison."""
        if pending.options is not None or pending.parse_error is not None:
            return pending.parse_error is None
        try:
            deck = parse_deck_text(pending.req.deck_text)
            options = deck_solver_options(deck)
            if self.checkpoint_root is not None \
                    and options.checkpoint_interval > 0:
                # Service-managed durability: the deck's
                # ``tl_checkpoint_interval`` becomes the guard's snapshot
                # cadence and the shards land in the per-request
                # directory under ``checkpoint_root`` (the deck's own
                # ``tl_checkpoint_dir`` is a placeholder here).
                options = replace(
                    options,
                    guard_interval=(options.guard_interval
                                    or options.checkpoint_interval),
                    checkpoint_interval=0, checkpoint_dir="")
            pending.options = options
        except (ConfigurationError, ValueError) as exc:
            pending.parse_error = exc
        return pending.parse_error is None

    def _checkpoint_dir_for(self, pending: _Pending):
        """Per-request durable solver-shard directory (or ``None``)."""
        if self.checkpoint_root is None or pending.options is None \
                or pending.options.guard_interval <= 0:
            return None
        return self.checkpoint_root / pending.req.request_id

    def _cache_key(self, options, n: int):
        return (n, self.config.group_size, options.solver,
                options.preconditioner, options.halo_depth,
                options.ppcg_inner_steps, options.eigen_warmup_iters,
                options.eigen_safety, options.dtype)

    def _setup_for(self, options, n: int):
        """Cache lookup (and eager block-Jacobi build) for this dispatch.

        Returns ``(key, setup, hit)``: ``hit`` is True only when the
        setup came out of the cache (a freshly built factorization is
        this request's miss; the requests behind it get the hits).
        """
        if not self.config.cache_enabled:
            return None, None, False
        if options.solver in ("chebyshev", "ppcg"):
            key = self._cache_key(options, n)
            setup = self.cache.get(key)
            return key, setup, setup is not None
        if options.solver in ("cg", "cg_fused") \
                and options.preconditioner == "block_jacobi" \
                and self.config.group_size == 1:
            key = self._cache_key(options, n)
            setup = self.cache.get(key)
            if setup is not None:
                return key, setup, True
            setup = SolveSetup(
                preconditioner=self._build_preconditioner(options, n))
            self.cache.put(key, setup)
            return key, setup, False
        return None, None, False

    def _build_preconditioner(self, options, n: int):
        from repro.solvers.preconditioners import make_local_preconditioner
        from repro.testing import crooked_pipe_system, serial_operator
        grid, kxg, kyg, _ = crooked_pipe_system(n)
        op = serial_operator(grid, kxg, kyg,
                             halo=options.required_field_halo)
        return make_local_preconditioner(op, options.preconditioner)

    def _execute(self, pending: _Pending, worker: WorkerGroup) -> None:
        req = pending.req
        outcome = pending.outcome
        outcome.status = "failed"   # provisional; every path below overwrites
        if outcome.start_s < 0:
            outcome.start_s = self.now
        pending.attempts += 1
        outcome.attempts = pending.attempts
        outcome.worker = worker.wid
        pending.last_worker = worker.wid
        worker.breaker.on_dispatch()
        self._journal({"type": "dispatched", "request_id": req.request_id,
                       "attempt": pending.attempts, "worker": worker.wid,
                       "now": self.now})

        if not self._parse(pending):
            exc = pending.parse_error
            self._finish(pending, worker, self.config.overhead_s,
                         status="failed", error=exc)
            return
        options = pending.options
        outcome.solver = options.solver

        # Pressure-based degradation (sticky across retries: a laddered
        # request never un-degrades mid-flight).
        level = self._pressure_level()
        if level > len(pending.degrade_steps):
            options, applied = degrade_for_pressure(options, level)
            pending.options = options
            pending.degrade_steps = pending.degrade_steps + [
                s for s in applied if s not in pending.degrade_steps]
        outcome.solver = options.solver
        outcome.degrade_steps = list(pending.degrade_steps)

        cost = iteration_cost_s(options.solver, req.n)

        # Deadline → iteration budget (pure function of the counter).
        token = CancelToken()
        deadline_abs = None
        if req.deadline_s is not None:
            deadline_abs = req.arrival_s + req.deadline_s
            budget = int((deadline_abs - self.now) / cost)
            if budget <= 0:
                self._finish(pending, worker, self.config.overhead_s,
                             status="deadline_exceeded")
                return
            token = CancelToken(iteration_budget=budget,
                                deadline_s=deadline_abs)
        cancel = token
        if req.cancel_after_s is not None:
            cancel_abs = req.arrival_s + req.cancel_after_s
            cancel_at = int((cancel_abs - self.now) / cost)
            if cancel_at <= 0:
                self._finish(pending, worker, self.config.overhead_s,
                             status="cancelled")
                return
            cancel = ScheduledCancel(token, cancel_at)
        if self.config.stuck_after_s > 0:
            # Liveness allowance in iterations: deterministic on virtual
            # time, so the supervisor never perturbs reproducibility.
            cancel = SupervisedToken(
                cancel, int(self.config.stuck_after_s / cost))

        plan = None
        if req.chaos_trial >= 0:
            # A fatal crash storm hits the *first* attempt; a re-dispatch
            # runs on a fresh world after the storm (still under transient
            # faults), so hedged retries and breaker probes can recover —
            # the ledger's recovery rate measures exactly this.
            plan = random_fault_plan(self.config.chaos_seed, req.chaos_trial,
                                     size=self.config.group_size,
                                     solver=options.solver,
                                     max_attempts=self.config.comm_attempts,
                                     fatal_crash=req.chaos_crash
                                     and pending.attempts == 1)

        key, setup, cache_hit = self._setup_for(options, req.n)
        outcome.cache_hit = cache_hit

        # Exactly-once execution: an attempt whose classified result is
        # already journaled is *replayed*, not re-solved — converged
        # solutions come back out of the durable result store.  A
        # damaged result shard degrades to a deterministic re-solve,
        # digest-checked against the journal below.
        entry = self.replay.attempts.get((req.request_id, pending.attempts)) \
            if self.journal is not None else None
        result = None
        replayed = False
        if entry is not None:
            x = None
            if entry["kind"] == "ok":
                x = (self.results.load(req.request_id, entry["digest"])
                     if self.results is not None else None)
            if entry["kind"] != "ok" or x is not None:
                result = synthesize_result(entry, x)
                replayed = True
                self.replayed_attempts += 1
                self._count("replayed")
        if result is None:
            # The in-flight crash victim (dispatched pre-crash, no
            # attempt record) resumes mid-solve from its durable guard
            # shards — only without a fault plan, whose injection points
            # are op-indexed and must not be shifted by recovery traffic.
            resume: bool | str = False
            ckpt_dir = self._checkpoint_dir_for(pending)
            if ckpt_dir is not None and plan is None \
                    and self.replay.resumable(req.request_id,
                                              pending.attempts):
                resume = "exact"
            with self.tracer.span("request", req.request_id):
                result = worker.execute(options, req.n, plan=plan,
                                        cancel=cancel, setup=setup,
                                        checkpoint_dir=ckpt_dir,
                                        resume=resume)
            if resume == "exact" and result.kind == "ok":
                self.resumed_requests.append(req.request_id)
                self._count("resumed")

        digest = ""
        if result.kind == "ok" and result.report is not None \
                and result.report.x is not None:
            if replayed:
                digest = entry["digest"]
            elif self.results is not None:
                digest = self.results.save(req.request_id, result.report.x)
            elif self.journal is not None:
                digest = solution_digest(result.report.x)
            if entry is not None and not replayed \
                    and digest != entry["digest"]:
                raise JournalError(
                    f"re-solve of journaled request {req.request_id} "
                    f"produced digest {digest[:12]}…, journal holds "
                    f"{entry['digest'][:12]}… — the deterministic "
                    f"replay diverged")
        pending.digest = digest
        if self.journal is not None:
            rep = None
            bounds = None
            if result.report is not None:
                rep = {"retries": result.report.retries,
                       "degraded": bool(result.report.degraded),
                       "virtual_time_s": result.report.virtual_time_s}
                solved = getattr(result.report, "result", None)
                eb = getattr(solved, "eigen_bounds", None)
                if eb:
                    bounds = [float(eb[0]), float(eb[1])]
            self._journal({
                "type": "attempt", "request_id": req.request_id,
                "attempt": pending.attempts, "kind": result.kind,
                "iterations": result.iterations, "report": rep,
                "bounds": bounds, "digest": digest,
                "error_class": result.error_class,
                "error_message": (str(result.error)[:200]
                                  if result.error is not None else "")})

        duration = (self.config.overhead_s + result.iterations * cost
                    + (result.report.virtual_time_s if result.report else 0.0))
        outcome.iterations = result.iterations
        if result.report is not None:
            outcome.retries += result.report.retries

        if result.kind == "ok":
            if key is not None and setup is None \
                    and options.solver in ("chebyshev", "ppcg"):
                self._cache_bounds(key, result.report.result)
            degraded = bool(pending.degrade_steps) \
                or bool(result.report and result.report.degraded)
            status = "degraded" if degraded else "completed"
            self._finish(pending, worker, duration, status=status,
                         report=result.report)
            worker.breaker.record_success()
            return
        if result.kind in ("deadline_exceeded", "cancelled"):
            # The token fired at an iteration boundary, so the charged
            # duration covers exactly the iterations that ran.
            self._finish(pending, worker, duration, status=result.kind,
                         error=result.error)
            worker.breaker.record_success()   # the worker itself is healthy
            return
        if result.kind == "fatal":
            self._finish(pending, worker, duration + self.config.failure_cost_s,
                         status="failed", error=result.error)
            worker.breaker.record_success()   # solve failed, worker fine
            return
        # Retryable-class: comm-level death (crash storm, exhausted
        # retries) or a supervisor-declared stuck dispatch — both count
        # against the breaker and re-dispatch hedged while attempts
        # remain.
        self._count("stuck" if result.kind == "stuck"
                    else "retryable_failures")
        finish_t = self.now + duration + self.config.failure_cost_s
        worker.busy_until = finish_t
        self._push(finish_t, "complete", (worker, None))
        worker.breaker.record_failure(finish_t)
        if worker.breaker.state == "open":
            self._count("breaker.opened")
        if pending.attempts < req.max_attempts:
            backoff = self.config.retry_backoff_s * (2 ** (pending.attempts - 1))
            self._count("redispatches")
            self._push(finish_t + backoff, "retry", pending)
        else:
            outcome.status = "failed"
            outcome.error_class = result.error_class
            outcome.error_message = str(result.error)[:200]
            outcome.finish_s = finish_t
            self._count("failed")
            self._journal({"type": "terminal",
                           "request_id": req.request_id,
                           "status": "failed", "finish_s": finish_t,
                           "key": req.idempotency_key, "digest": "",
                           "solver": outcome.solver})

    def _cache_bounds(self, key, solve_result) -> None:
        bounds = getattr(solve_result, "eigen_bounds", None)
        if not bounds:
            return
        lam_min, lam_max = bounds
        try:
            eb = EigenBounds(lam_min, lam_max)
        except (ConfigurationError, ValueError):
            return   # degenerate estimate: not worth poisoning the cache
        self.cache.put(key, SolveSetup(bounds=eb))

    def _finish(self, pending: _Pending, worker: WorkerGroup,
                duration: float, *, status: str, error=None,
                report=None) -> None:
        outcome = pending.outcome
        finish_t = self.now + duration
        outcome.status = status
        outcome.finish_s = finish_t
        if error is not None:
            outcome.error_class = type(error).__name__
            outcome.error_message = str(error)[:200]
        if report is not None and report.x is not None:
            outcome.x = report.x
        worker.busy_until = finish_t
        self._push(finish_t, "complete", (worker, None))
        self._count(status)
        digest = pending.digest if status in ("completed", "degraded") else ""
        terminal = {"type": "terminal", "request_id": outcome.request_id,
                    "status": status, "finish_s": finish_t,
                    "key": pending.req.idempotency_key, "digest": digest,
                    "solver": outcome.solver}
        self._journal(terminal)
        if digest and pending.req.idempotency_key:
            self._completed_keys.setdefault(
                pending.req.idempotency_key, terminal)

    # -- completion ------------------------------------------------------------

    def _complete(self, worker: WorkerGroup, _payload) -> None:
        if worker.busy_until <= self.now:
            worker.busy_until = 0.0
