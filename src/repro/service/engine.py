"""Deterministic multi-tenant solve engine.

The engine is a discrete-event scheduler over **virtual time**: requests
arrive at seeded virtual timestamps, admission control (per-tenant token
buckets + a bounded queue) sheds overload, and a pool of
:class:`~repro.service.worker.WorkerGroup` slots executes the solves —
**real** SPMD solves, run synchronously in event order, whose *virtual*
duration is charged from a per-iteration cost model plus the resilient
stack's injected latency.  Because no wall clock is consulted anywhere,
two same-seed runs produce byte-identical outcome ledgers — which is how
the service sweep pins hundreds of mixed chaos requests in CI.

Per request the engine provides:

- **deadlines** — converted up front into an iteration budget on a
  :class:`~repro.service.cancel.CancelToken`, so expiry is a pure
  function of the iteration counter and rank-coherent;
- **client cancels** — a ``cancel_after_s`` lands as a
  :class:`~repro.service.cancel.ScheduledCancel` at the matching
  iteration boundary;
- **admission control** — token-bucket quota per tenant, bounded queue,
  structured shed outcomes;
- **circuit breaking + hedged retry** — per-worker breakers route
  around crashing groups; retryable failures re-dispatch with backoff,
  preferring a *different* worker;
- **graceful degradation** — queue-pressure watermarks ladder options
  down (:mod:`repro.service.degrade`);
- **setup caching** — eigenvalue bounds / block-Jacobi factorizations
  reused across requests (:mod:`repro.service.cache`).

Every request terminates in exactly one
:data:`~repro.service.requests.STATUSES` — the engine has no
"unclassified" exit path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.observe.metrics import MetricsRegistry
from repro.physics.deck import deck_solver_options, parse_deck_text
from repro.resilience.chaos import random_fault_plan
from repro.service.cancel import CancelToken, ScheduledCancel
from repro.service.cache import SetupCache
from repro.service.degrade import degrade_for_pressure
from repro.service.quota import TokenBucket
from repro.service.requests import RequestOutcome, SolveRequest
from repro.service.worker import WorkerGroup
from repro.solvers.driver import SolveSetup
from repro.solvers.eigen import EigenBounds
from repro.utils.errors import ConfigurationError

#: Virtual seconds one solver iteration costs per mesh cell.
_CELL_COST_S = 1e-7

#: Relative per-iteration weight of each outer solver iteration (PPCG
#: outer iterations run ``inner_steps`` Chebyshev applications, hence the
#: large factor).
_SOLVER_WEIGHT = {
    "jacobi": 0.6,
    "cg": 1.0,
    "cg_fused": 0.9,
    "chebyshev": 1.1,
    "ppcg": 5.0,
    "dcg": 1.5,
    "mgcg": 4.0,
}


def iteration_cost_s(solver: str, n: int) -> float:
    """Virtual cost of one outer iteration of ``solver`` on an n×n mesh."""
    return _SOLVER_WEIGHT.get(solver, 1.0) * _CELL_COST_S * n * n


@dataclass(frozen=True)
class ServiceConfig:
    """Engine knobs (all virtual-time)."""

    workers: int = 2
    group_size: int = 1
    max_queue: int = 8
    quota_rate: float = 50.0        #: tokens / virtual second / tenant
    quota_burst: float = 10.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.5
    retry_backoff_s: float = 0.01   #: service-level re-dispatch backoff
    comm_attempts: int = 5          #: retry budget inside the comm stack
    degrade_low: float = 0.5        #: queue-pressure watermark → level 1
    degrade_high: float = 0.8       #: queue-pressure watermark → level 2
    degrade_enabled: bool = True
    cache_entries: int = 32
    cache_enabled: bool = True
    overhead_s: float = 2e-4        #: fixed dispatch/teardown charge
    failure_cost_s: float = 0.01    #: virtual charge of a failed attempt
    chaos_seed: int = 0             #: base seed for per-request fault plans


@dataclass
class _Pending:
    """One admitted request's mutable dispatch state."""

    req: SolveRequest
    outcome: RequestOutcome
    attempts: int = 0
    last_worker: int = -1
    options: object = None          #: parsed SolverOptions (lazy)
    parse_error: BaseException | None = None
    degrade_steps: list = field(default_factory=list)


class ServiceEngine:
    """Run a batch of requests to terminal outcomes on virtual time."""

    def __init__(self, config: ServiceConfig | None = None, tracer=None):
        self.config = config if config is not None else ServiceConfig()
        self.metrics = MetricsRegistry()
        self.cache = SetupCache(self.config.cache_entries,
                                metrics=self.metrics)
        self.workers = [
            WorkerGroup(i, group_size=self.config.group_size,
                        max_attempts=self.config.comm_attempts)
            for i in range(self.config.workers)
        ]
        for w in self.workers:
            w.breaker.failure_threshold = self.config.breaker_threshold
            w.breaker.cooldown_s = self.config.breaker_cooldown_s
        self.buckets: dict[str, TokenBucket] = {}
        self.now = 0.0
        if tracer is None:
            from repro.observe.trace import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer
        self._heap: list = []
        self._seq = 0
        self._queue: list[_Pending] = []
        self._outcomes: dict[str, RequestOutcome] = {}

    # -- event plumbing --------------------------------------------------------

    def _push(self, when: float, kind: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, kind, payload))

    def _count(self, name: str) -> None:
        self.metrics.counter(f"service.{name}").inc()

    # -- public API ------------------------------------------------------------

    def run(self, requests: list[SolveRequest]) -> list[RequestOutcome]:
        """Drive every request to a terminal outcome; arrival order out."""
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        for req in ordered:
            self._push(req.arrival_s, "arrival", req)
        while self._heap or self._queue:
            if not self._heap:
                # Queue non-empty but nothing scheduled: every worker is
                # idle behind an open breaker.  Wake at the earliest
                # cooldown expiry so probes (half-open) drain the queue —
                # breakers always reopen, so progress is guaranteed.
                wake = min(w.breaker._opened_at + w.breaker.cooldown_s
                           for w in self.workers)
                self._push(max(wake, self.now), "wake", None)
            when, _, kind, payload = heapq.heappop(self._heap)
            self.now = when
            if kind == "arrival":
                self._admit(payload)
            elif kind == "complete":
                self._complete(*payload)
            elif kind == "retry":
                self._enqueue(payload)
            self._dispatch()
        return [self._outcomes[r.request_id] for r in ordered]

    # -- admission -------------------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self.buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.quota_rate,
                                 self.config.quota_burst)
            self.buckets[tenant] = bucket
        return bucket

    def _admit(self, req: SolveRequest) -> None:
        outcome = RequestOutcome(request_id=req.request_id,
                                 tenant=req.tenant, status="shed",
                                 arrival_s=req.arrival_s)
        self._outcomes[req.request_id] = outcome
        if not self._bucket(req.tenant).try_acquire(self.now):
            outcome.shed_reason = "quota"
            outcome.finish_s = self.now
            self._count("shed.quota")
            return
        if len(self._queue) >= self.config.max_queue:
            outcome.shed_reason = "queue_full"
            outcome.finish_s = self.now
            self._count("shed.queue")
            return
        self._count("admitted")
        self._enqueue(_Pending(req=req, outcome=outcome))

    def _enqueue(self, pending: _Pending) -> None:
        self._queue.append(pending)

    # -- dispatch --------------------------------------------------------------

    def _pick_worker(self, avoid: int) -> WorkerGroup | None:
        """Lowest-id idle worker whose breaker admits a dispatch.

        Hedged re-dispatch: prefer a worker other than the one that just
        failed the request, falling back to it only when it is the sole
        healthy slot.
        """
        candidates = [w for w in self.workers
                      if w.busy_until <= self.now and w.breaker.allow(self.now)]
        if not candidates:
            return None
        preferred = [w for w in candidates if w.wid != avoid]
        return (preferred or candidates)[0]

    def _pressure_level(self) -> int:
        if not self.config.degrade_enabled or self.config.max_queue <= 0:
            return 0
        pressure = len(self._queue) / self.config.max_queue
        if pressure >= self.config.degrade_high:
            return 2
        if pressure >= self.config.degrade_low:
            return 1
        return 0

    def _dispatch(self) -> None:
        while self._queue:
            worker = self._pick_worker(avoid=self._queue[0].last_worker)
            if worker is None:
                return
            pending = self._queue.pop(0)
            self._execute(pending, worker)

    def _parse(self, pending: _Pending) -> bool:
        """Parse the deck once; False means the request is poison."""
        if pending.options is not None or pending.parse_error is not None:
            return pending.parse_error is None
        try:
            deck = parse_deck_text(pending.req.deck_text)
            pending.options = deck_solver_options(deck)
        except (ConfigurationError, ValueError) as exc:
            pending.parse_error = exc
        return pending.parse_error is None

    def _cache_key(self, options, n: int):
        return (n, self.config.group_size, options.solver,
                options.preconditioner, options.halo_depth,
                options.ppcg_inner_steps, options.eigen_warmup_iters,
                options.eigen_safety, options.dtype)

    def _setup_for(self, options, n: int):
        """Cache lookup (and eager block-Jacobi build) for this dispatch.

        Returns ``(key, setup, hit)``: ``hit`` is True only when the
        setup came out of the cache (a freshly built factorization is
        this request's miss; the requests behind it get the hits).
        """
        if not self.config.cache_enabled:
            return None, None, False
        if options.solver in ("chebyshev", "ppcg"):
            key = self._cache_key(options, n)
            setup = self.cache.get(key)
            return key, setup, setup is not None
        if options.solver in ("cg", "cg_fused") \
                and options.preconditioner == "block_jacobi" \
                and self.config.group_size == 1:
            key = self._cache_key(options, n)
            setup = self.cache.get(key)
            if setup is not None:
                return key, setup, True
            setup = SolveSetup(
                preconditioner=self._build_preconditioner(options, n))
            self.cache.put(key, setup)
            return key, setup, False
        return None, None, False

    def _build_preconditioner(self, options, n: int):
        from repro.solvers.preconditioners import make_local_preconditioner
        from repro.testing import crooked_pipe_system, serial_operator
        grid, kxg, kyg, _ = crooked_pipe_system(n)
        op = serial_operator(grid, kxg, kyg,
                             halo=options.required_field_halo)
        return make_local_preconditioner(op, options.preconditioner)

    def _execute(self, pending: _Pending, worker: WorkerGroup) -> None:
        req = pending.req
        outcome = pending.outcome
        outcome.status = "failed"   # provisional; every path below overwrites
        if outcome.start_s < 0:
            outcome.start_s = self.now
        pending.attempts += 1
        outcome.attempts = pending.attempts
        outcome.worker = worker.wid
        pending.last_worker = worker.wid
        worker.breaker.on_dispatch()

        if not self._parse(pending):
            exc = pending.parse_error
            self._finish(pending, worker, self.config.overhead_s,
                         status="failed", error=exc)
            return
        options = pending.options
        outcome.solver = options.solver

        # Pressure-based degradation (sticky across retries: a laddered
        # request never un-degrades mid-flight).
        level = self._pressure_level()
        if level > len(pending.degrade_steps):
            options, applied = degrade_for_pressure(options, level)
            pending.options = options
            pending.degrade_steps = pending.degrade_steps + [
                s for s in applied if s not in pending.degrade_steps]
        outcome.solver = options.solver
        outcome.degrade_steps = list(pending.degrade_steps)

        cost = iteration_cost_s(options.solver, req.n)

        # Deadline → iteration budget (pure function of the counter).
        token = CancelToken()
        deadline_abs = None
        if req.deadline_s is not None:
            deadline_abs = req.arrival_s + req.deadline_s
            budget = int((deadline_abs - self.now) / cost)
            if budget <= 0:
                self._finish(pending, worker, self.config.overhead_s,
                             status="deadline_exceeded")
                return
            token = CancelToken(iteration_budget=budget,
                                deadline_s=deadline_abs)
        cancel = token
        if req.cancel_after_s is not None:
            cancel_abs = req.arrival_s + req.cancel_after_s
            cancel_at = int((cancel_abs - self.now) / cost)
            if cancel_at <= 0:
                self._finish(pending, worker, self.config.overhead_s,
                             status="cancelled")
                return
            cancel = ScheduledCancel(token, cancel_at)

        plan = None
        if req.chaos_trial >= 0:
            # A fatal crash storm hits the *first* attempt; a re-dispatch
            # runs on a fresh world after the storm (still under transient
            # faults), so hedged retries and breaker probes can recover —
            # the ledger's recovery rate measures exactly this.
            plan = random_fault_plan(self.config.chaos_seed, req.chaos_trial,
                                     size=self.config.group_size,
                                     solver=options.solver,
                                     max_attempts=self.config.comm_attempts,
                                     fatal_crash=req.chaos_crash
                                     and pending.attempts == 1)

        key, setup, cache_hit = self._setup_for(options, req.n)
        outcome.cache_hit = cache_hit

        with self.tracer.span("request", req.request_id):
            result = worker.execute(options, req.n, plan=plan,
                                    cancel=cancel, setup=setup)

        duration = (self.config.overhead_s + result.iterations * cost
                    + (result.report.virtual_time_s if result.report else 0.0))
        outcome.iterations = result.iterations
        if result.report is not None:
            outcome.retries += result.report.retries

        if result.kind == "ok":
            if key is not None and setup is None \
                    and options.solver in ("chebyshev", "ppcg"):
                self._cache_bounds(key, result.report.result)
            degraded = bool(pending.degrade_steps) \
                or bool(result.report and result.report.degraded)
            status = "degraded" if degraded else "completed"
            self._finish(pending, worker, duration, status=status,
                         report=result.report)
            worker.breaker.record_success()
            return
        if result.kind in ("deadline_exceeded", "cancelled"):
            # The token fired at an iteration boundary, so the charged
            # duration covers exactly the iterations that ran.
            self._finish(pending, worker, duration, status=result.kind,
                         error=result.error)
            worker.breaker.record_success()   # the worker itself is healthy
            return
        if result.kind == "fatal":
            self._finish(pending, worker, duration + self.config.failure_cost_s,
                         status="failed", error=result.error)
            worker.breaker.record_success()   # solve failed, worker fine
            return
        # Retryable: comm-level death (crash storm, exhausted retries).
        self._count("retryable_failures")
        finish_t = self.now + duration + self.config.failure_cost_s
        worker.busy_until = finish_t
        self._push(finish_t, "complete", (worker, None))
        worker.breaker.record_failure(finish_t)
        if worker.breaker.state == "open":
            self._count("breaker.opened")
        if pending.attempts < req.max_attempts:
            backoff = self.config.retry_backoff_s * (2 ** (pending.attempts - 1))
            self._count("redispatches")
            self._push(finish_t + backoff, "retry", pending)
        else:
            outcome.status = "failed"
            outcome.error_class = result.error_class
            outcome.error_message = str(result.error)[:200]
            outcome.finish_s = finish_t
            self._count("failed")

    def _cache_bounds(self, key, solve_result) -> None:
        bounds = getattr(solve_result, "eigen_bounds", None)
        if not bounds:
            return
        lam_min, lam_max = bounds
        try:
            eb = EigenBounds(lam_min, lam_max)
        except (ConfigurationError, ValueError):
            return   # degenerate estimate: not worth poisoning the cache
        self.cache.put(key, SolveSetup(bounds=eb))

    def _finish(self, pending: _Pending, worker: WorkerGroup,
                duration: float, *, status: str, error=None,
                report=None) -> None:
        outcome = pending.outcome
        finish_t = self.now + duration
        outcome.status = status
        outcome.finish_s = finish_t
        if error is not None:
            outcome.error_class = type(error).__name__
            outcome.error_message = str(error)[:200]
        if report is not None and report.x is not None:
            outcome.x = report.x
        worker.busy_until = finish_t
        self._push(finish_t, "complete", (worker, None))
        self._count(status)

    # -- completion ------------------------------------------------------------

    def _complete(self, worker: WorkerGroup, _payload) -> None:
        if worker.busy_until <= self.now:
            worker.busy_until = 0.0
