"""repro — a Python reproduction of the TeaLeaf mini-application.

TeaLeaf (McIntosh-Smith et al., IEEE CLUSTER 2017) is a mini-app for
design-space exploration of iterative sparse linear solvers on the implicit
heat-conduction problem.  This library rebuilds, from scratch:

- the mini-app itself (:mod:`repro.mesh`, :mod:`repro.physics`): structured
  grid, rectangular decomposition, halo exchange, input decks, the
  crooked-pipe benchmark;
- the solver design space (:mod:`repro.solvers`): Jacobi, CG, Chebyshev and
  the paper's communication-avoiding **CPPCG** with block-Jacobi
  preconditioning and the matrix powers kernel;
- the baseline (:mod:`repro.multigrid`): a geometric-multigrid-preconditioned
  CG standing in for PETSc CG + BoomerAMG;
- the distributed substrate (:mod:`repro.comm`): an in-process SPMD world
  (thread ranks, mpi4py-flavoured API) with traffic instrumentation;
- the evaluation (:mod:`repro.perfmodel`, :mod:`repro.harness`): calibrated
  machine models of Titan, Piz Daint and Spruce regenerating every table and
  figure of the paper's strong-scaling study.

Quickstart::

    from repro import (Grid2D, SolverOptions, crooked_pipe, run_simulation)
    report = run_simulation(Grid2D(64, 64), crooked_pipe(),
                            SolverOptions(solver="ppcg"), n_steps=10)
    print(report.final_mean_temperature)
"""

from repro.mesh import Grid2D, Grid3D, Field, Tile, decompose, HaloExchanger
from repro.comm import (
    SerialComm,
    ThreadComm,
    ThreadWorld,
    InstrumentedComm,
    launch_spmd,
)
from repro.physics import (
    Conductivity,
    ProblemSpec,
    RegionSpec,
    crooked_pipe,
    uniform_problem,
    hot_square,
    parse_deck,
    parse_deck_text,
    Simulation,
    SimulationReport,
    run_simulation,
)
from repro.solvers import (
    StencilOperator2D,
    SolverOptions,
    SolveResult,
    solve_linear,
    cg_solve,
    ppcg_solve,
    chebyshev_solve,
    jacobi_solve,
    EigenBounds,
    estimate_eigenvalues,
    iteration_bounds,
)
from repro.utils import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    DecompositionError,
    CommunicationError,
)

__version__ = "1.0.0"

__all__ = [
    "Grid2D",
    "Grid3D",
    "Field",
    "Tile",
    "decompose",
    "HaloExchanger",
    "SerialComm",
    "ThreadComm",
    "ThreadWorld",
    "InstrumentedComm",
    "launch_spmd",
    "Conductivity",
    "ProblemSpec",
    "RegionSpec",
    "crooked_pipe",
    "uniform_problem",
    "hot_square",
    "parse_deck",
    "parse_deck_text",
    "Simulation",
    "SimulationReport",
    "run_simulation",
    "StencilOperator2D",
    "SolverOptions",
    "SolveResult",
    "solve_linear",
    "cg_solve",
    "ppcg_solve",
    "chebyshev_solve",
    "jacobi_solve",
    "EigenBounds",
    "estimate_eigenvalues",
    "iteration_bounds",
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "DecompositionError",
    "CommunicationError",
    "__version__",
]
