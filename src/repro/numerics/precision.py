"""Working-precision utilities for mixed-precision solves.

This module is the *single sanctioned home* of single-precision dtype
literals in the tree: the analyzer's RPR005 rule forbids ``np.float32``
everywhere else (``mixed-precision-paths`` in ``[tool.repro-analysis]``),
so every other layer must take the working precision through the
``SolverOptions.dtype`` knob and the helpers here.

The model follows the classic mixed-precision iterative-refinement
literature: the *working* precision carries the fields, the operator
coefficients and the inner solver arithmetic, while global reductions and
the outer defect/refinement arithmetic stay in float64 (reductions return
Python floats regardless of field dtype, see
:meth:`repro.solvers.operator.StencilOperator2D.dots`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.mesh.field import Field
from repro.solvers.operator import StencilOperator2D
from repro.utils.errors import ConfigurationError

#: The supported working precisions, keyed by their SolverOptions spelling.
DTYPES: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}


def resolve_dtype(dtype: str | np.dtype) -> np.dtype:
    """Map a ``SolverOptions.dtype`` spelling (or dtype) to a numpy dtype."""
    name = dtype if isinstance(dtype, str) else np.dtype(dtype).name
    try:
        return DTYPES[name]
    except KeyError:
        raise ConfigurationError(
            f"unsupported working dtype {dtype!r}: choose from "
            f"{sorted(DTYPES)}") from None


def unit_roundoff(dtype: str | np.dtype) -> float:
    """The unit roundoff ``u = eps/2`` of a working precision."""
    return float(np.finfo(resolve_dtype(dtype)).eps) / 2.0


def inner_tolerance(dtype: str | np.dtype, eps: float) -> float:
    """Stopping tolerance for an inner (reduced-precision) refinement solve.

    Solving each defect system to the outer tolerance is both wasteful and —
    below the working precision's attainable accuracy — impossible, so the
    inner solves stop at ``max(eps, sqrt(u))`` and the outer refinement loop
    recovers the remaining digits in float64.
    """
    return max(eps, math.sqrt(unit_roundoff(dtype)))


def cast_field(f: Field, dtype: str | np.dtype) -> Field:
    """A copy of ``f`` in the requested precision (``f`` itself if it
    already matches — casting is only paid when precision actually changes)."""
    dt = resolve_dtype(dtype)
    if f.data.dtype == dt:
        return f
    return Field(f.tile, f.halo, f.data.astype(dt))


def cast_operator(op: StencilOperator2D, dtype: str | np.dtype
                  ) -> StencilOperator2D:
    """An operator whose coefficients (and workspaces) live at ``dtype``.

    Shares the communicator, event log and tracer of ``op`` so demoted
    solves keep recording into the same profile; returns ``op`` unchanged
    when the precision already matches.
    """
    dt = resolve_dtype(dtype)
    if op.dtype == dt:
        return op
    return StencilOperator2D(
        kx=cast_field(op.kx, dt),
        ky=cast_field(op.ky, dt),
        comm=op.comm,
        events=op.events,
        tracer=op.tracer,
    )
