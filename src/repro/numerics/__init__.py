"""Numerical-robustness layer: mixed precision, residual replacement,
unified breakdown detection and condition-aware safeguards.

PRs 2 and 4 hardened the stack against *external* faults (injection,
retry, checkpoint/restart, silent data corruption); this package hardens
it against *internal* numerical faults — the stability loss that
communication-avoiding CPPCG with deep matrix-powers halos is known for,
and the rounding behaviour of reduced working precisions.  See
``docs/numerics.md`` for the model.
"""

from repro.numerics.breakdown import BreakdownError, BreakdownGuard
from repro.numerics.precision import (
    DTYPES,
    cast_field,
    cast_operator,
    inner_tolerance,
    resolve_dtype,
    unit_roundoff,
)
from repro.numerics.refine import PrecisionDiagnosis, refined_solve
from repro.numerics.replacement import (
    ReplacementStats,
    ResidualReplacer,
    attach_true_residual,
)

__all__ = [
    "BreakdownError",
    "BreakdownGuard",
    "DTYPES",
    "PrecisionDiagnosis",
    "ReplacementStats",
    "ResidualReplacer",
    "attach_true_residual",
    "cast_field",
    "cast_operator",
    "inner_tolerance",
    "refined_solve",
    "resolve_dtype",
    "unit_roundoff",
]
