"""Residual replacement for (communication-avoiding) CG variants.

The CG recurrence updates its residual as ``r <- r - alpha A p``; in finite
precision this *recurrence residual* drifts away from the true residual
``b - A x``, and the drift is amplified by deep matrix-powers Chebyshev
preconditioning (CPPCG at halo depth 16 stacks 16 stencil applications per
inner step between consistency points).  The classic remedy (van der Vorst
& Ye) is **residual replacement**: periodically recompute ``b - A x``,
compare, and when the drift exceeds a rounding-error bound, splice the true
residual into the recurrence and restart the search direction.

This module provides the *policy* — cadence, condition-aware adaptation and
the drift bound — while the solvers keep the field arithmetic.  All
decisions are taken from globally-reduced scalars, so every rank takes the
same branch (SPMD-deterministic).  The extra halo exchange and reduction of
each check run under :func:`repro.utils.events.replacement_scope`, keeping
first-attempt ``COMM_CONTRACT`` counts exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.numerics.precision import unit_roundoff
from repro.solvers.eigen import condition_estimate
from repro.utils.events import replacement_scope

#: Default multiple of the rounding-error estimate a drift may reach before
#: the true residual is spliced in.
DEFAULT_SAFETY = 100.0
#: Never check more often than this (a check costs one halo exchange plus
#: one allreduce).
MIN_INTERVAL = 4


@dataclass
class ReplacementStats:
    """Counters a solve accumulates for reporting/stability sweeps."""

    checks: int = 0
    splices: int = 0
    max_drift: float = 0.0
    interval: int = 0

    def as_dict(self) -> dict:
        return {"checks": self.checks, "splices": self.splices,
                "max_drift": self.max_drift, "interval": self.interval}


@dataclass
class ResidualReplacer:
    """Cadence + drift-bound policy for residual replacement.

    Parameters
    ----------
    interval:
        Base (and maximum) check cadence in outer iterations.
    dtype:
        Working precision of the recurrence (sets the unit roundoff the
        drift bound is built from).
    adaptive:
        When True, shrink the cadence toward ``1/sqrt(u * kappa)`` using
        Lanczos condition estimates from the live CG coefficients — badly
        conditioned systems drift faster and get checked more often.
    tolerance:
        Explicit relative drift bound; ``0`` derives the bound from the
        running rounding-error estimate ``safety * u * kappa``.
    safety:
        Multiplier on the derived bound.
    """

    interval: int
    dtype: str = "float64"
    adaptive: bool = False
    tolerance: float = 0.0
    safety: float = DEFAULT_SAFETY
    stats: ReplacementStats = field(default_factory=ReplacementStats)

    def __post_init__(self):
        self.unit = unit_roundoff(self.dtype)
        self.kappa = 1.0
        self.current = max(MIN_INTERVAL, int(self.interval))
        self._last_check = 0
        self.stats.interval = self.current

    def update_condition(self, alphas, betas) -> None:
        """Adapt the cadence to the spectrum CG has revealed so far."""
        if not self.adaptive:
            return
        self.kappa = condition_estimate(alphas, betas, default=self.kappa)
        target = 1.0 / math.sqrt(self.unit * self.kappa)
        self.current = int(min(max(MIN_INTERVAL, target), self.interval))
        self.stats.interval = self.current

    def due(self, iteration: int) -> bool:
        """True when a true-residual check is scheduled this iteration."""
        return iteration - self._last_check >= self.current

    def drift_bound(self, scale: float) -> float:
        """Largest |true - recurrence| norm gap attributable to rounding.

        ``scale`` is the *current* residual magnitude (van der Vorst & Ye
        compare the deviation against the residual itself, not the initial
        norm — a recurrence that keeps shrinking below a stalled true
        residual is exactly the failure to catch).  The derived bound is
        ``safety * u * kappa`` with a ``sqrt(u)`` floor: the floor covers
        well-conditioned systems where the ``u * kappa`` estimate is
        smaller than ordinary recurrence round-off.
        """
        if self.tolerance > 0.0:
            return self.tolerance * scale
        derived = self.safety * self.unit * max(self.kappa, 1.0)
        return max(derived, math.sqrt(self.unit)) * scale

    def observe(self, drift: float, scale: float, iteration: int) -> bool:
        """Record a check; True when the drift warrants splicing."""
        self._last_check = iteration
        self.stats.checks += 1
        self.stats.max_drift = max(self.stats.max_drift, drift)
        if drift > self.drift_bound(scale):
            self.stats.splices += 1
            return True
        return False


def attach_true_residual(result, op, b) -> float:
    """Compute ``||b - A x||`` once post-solve and attach it to ``result``.

    The extra depth-1 exchange and reduction run under the replacement
    scope, so per-iteration contract verification still sees first-attempt
    traffic only.  Returns (and stores) ``result.true_residual_norm``.
    """
    w = op.new_field()
    from repro.observe.trace import tracer_of
    with tracer_of(op).span("replace", "true_residual"), \
            replacement_scope(op.events, getattr(op.comm, "events", None)):
        op.residual(b, result.x, out=w)
        (rr,) = op.dots([(w, w)])
    result.true_residual_norm = float(np.sqrt(rr))
    return result.true_residual_norm
