"""Mixed-precision iterative refinement around reduced-precision solves.

The classic three-precision scheme specialised to two: the inner solver
(any of the configured Krylov/relaxation solvers) runs entirely at the
*working* precision (float32 operator, fields and recurrence), while the
outer loop accumulates the solution and recomputes the defect
``d = b - A x`` in float64.  Each outer step solves ``A c = d`` at working
precision and applies the correction ``x <- x + c``; as long as
``u_working * kappa(A)`` is comfortably below 1, the defect norm contracts
every step and the final accuracy is set by the float64 defect arithmetic,
not by the working precision.

When that contraction fails — refinement stagnates, the inner solver
breaks down, or the Lanczos condition estimate says float32 cannot make
progress at all — the loop **escalates**: it re-solves in float64 from the
current iterate and attaches a structured :class:`PrecisionDiagnosis`
explaining why, so harnesses can report "float32 was hopeless here"
instead of silently burning the iteration budget.

All outer-loop defect computations run under
:func:`repro.utils.events.replacement_scope`: they are real communication,
but not part of any solver's per-iteration ``COMM_CONTRACT``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from repro.mesh.field import Field
from repro.numerics.precision import (
    cast_field,
    cast_operator,
    inner_tolerance,
    unit_roundoff,
)
from repro.solvers.eigen import condition_estimate
from repro.solvers.result import SolveResult
from repro.utils.errors import ConvergenceError
from repro.utils.events import replacement_scope

#: Refinement is declared hopeless at the working precision once
#: ``u_working * kappa`` exceeds this (the inner solver then cannot even
#: resolve the defect system's dominant digits).
HOPELESS_THRESHOLD = 0.1


@dataclass(frozen=True)
class PrecisionDiagnosis:
    """Structured account of a mixed-precision solve's precision decisions.

    Attached to the returned :class:`SolveResult` as ``result.diagnosis``.
    """

    working_dtype: str
    final_dtype: str
    escalated: bool
    reason: str
    kappa_estimate: float
    attainable: float
    refinement_steps: int

    def summary(self) -> str:
        head = (f"escalated {self.working_dtype} -> {self.final_dtype}"
                if self.escalated else f"completed in {self.working_dtype}")
        return (f"{head} after {self.refinement_steps} refinement step(s): "
                f"{self.reason or 'defect contraction healthy'} "
                f"(kappa ~ {self.kappa_estimate:.3e}, "
                f"attainable ~ {self.attainable:.3e})")


def _defect_norm(op, b, x, d) -> float:
    """``d = b - A x`` and its global norm, in the outer precision."""
    with replacement_scope(op.events, getattr(op.comm, "events", None)):
        op.residual(b, x, out=d)
        (dd,) = op.dots([(d, d)])
    return float(np.sqrt(dd))


def refined_solve(op, b, x0, options, guard=None) -> SolveResult:
    """Solve ``A x = b`` by iterative refinement at ``options.dtype``.

    ``op``/``b`` are the caller's (float64) operator and right-hand side;
    the working-precision copies are created here, once.  The returned
    solution field is float64.
    """
    from repro.observe.trace import tracer_of
    from repro.solvers.driver import solve_linear

    working = options.dtype
    u_work = unit_roundoff(working)
    tracer = tracer_of(op)

    op_w = cast_operator(op, working)
    inner_opt = dc_replace(options, refine=False, true_residual=False,
                           dtype=working, raise_on_stall=False,
                           eps=inner_tolerance(working, options.eps))
    escalate_opt = dc_replace(options, refine=False, true_residual=False,
                              dtype="float64")

    x = x0.copy() if x0 is not None else op.new_field()
    d = op.new_field()
    norm = _defect_norm(op, b, x, d)
    r0 = norm
    threshold = options.eps * r0 if r0 > 0.0 else 0.0
    history = [norm]

    steps = 0
    iterations = inner_iters = warmup_iters = 0
    kappa = 1.0
    reason = ""
    escalated = False
    final_result = None

    while norm > threshold and steps < options.refine_max_steps:
        with tracer.span("refine", working):
            d_w = cast_field(d, working)
            try:
                inner = solve_linear(op_w, d_w, None, options=inner_opt,
                                     guard=guard)
            except ConvergenceError as exc:
                reason = f"inner {options.solver} solve failed: {exc}"
                break
        iterations += inner.iterations
        inner_iters += inner.inner_iterations
        warmup_iters += inner.warmup_iterations
        kappa = condition_estimate(getattr(inner, "alphas", ()),
                                   getattr(inner, "betas", ()),
                                   default=kappa)
        x.interior += inner.x.interior
        steps += 1
        prev = norm
        norm = _defect_norm(op, b, x, d)
        history.append(norm)
        if u_work * kappa > HOPELESS_THRESHOLD:
            reason = (f"condition estimate kappa ~ {kappa:.3e} makes "
                      f"{working} refinement hopeless "
                      f"(u * kappa = {u_work * kappa:.3e})")
            break
        if not math.isfinite(norm) or norm > options.refine_stagnation * prev:
            reason = (f"refinement stagnated at step {steps}: defect "
                      f"{prev:.6e} -> {norm:.6e}")
            break

    if norm > threshold and not reason:
        reason = (f"refinement budget of {options.refine_max_steps} "
                  f"step(s) exhausted at defect {norm:.6e}")
    if norm > threshold:
        # The working precision cannot finish the job: re-solve the
        # original system in float64 from the current iterate (escalation
        # is the remedy the diagnosis explains).
        escalated = True
        with tracer.span("refine", "escalate"):
            final_result = solve_linear(op, b, x, options=escalate_opt,
                                        guard=guard)
        iterations += final_result.iterations
        inner_iters += final_result.inner_iterations
        warmup_iters += final_result.warmup_iterations
        x = final_result.x
        norm = _defect_norm(op, b, x, d)
        history.append(norm)

    converged = norm <= threshold
    diagnosis = PrecisionDiagnosis(
        working_dtype=working,
        final_dtype="float64" if escalated else working,
        escalated=escalated,
        reason=reason,
        kappa_estimate=kappa,
        attainable=u_work * max(kappa, 1.0),
        refinement_steps=steps,
    )

    if not converged and options.raise_on_stall:
        err = ConvergenceError(
            f"{options.solver}+refinement did not converge: defect norm "
            f"{norm:.3e} > {threshold:.3e} after {steps} refinement "
            f"step(s) — {diagnosis.summary()}")
        err.diagnosis = diagnosis
        raise err

    result = SolveResult(
        x=x,
        solver=options.solver,
        converged=converged,
        iterations=iterations,
        residual_norm=norm,
        initial_residual_norm=r0,
        inner_iterations=inner_iters,
        warmup_iterations=warmup_iters,
        history=history,
        eigen_bounds=(final_result.eigen_bounds
                      if final_result is not None else None),
        events=op.events,
    )
    result.diagnosis = diagnosis
    result.refinement_steps = steps
    # The outer defect *is* the true residual — float64 b - A x.
    result.true_residual_norm = norm
    return result
