"""Unified breakdown detection for the iterative solvers.

Every Krylov/relaxation loop in the tree can fail *numerically* rather than
merely stall: an indefinite (or corrupted) operator makes ``<p, Ap>``
non-positive, lost conjugacy drives ``beta`` negative, rounding turns a
residual non-finite, or the recurrence quietly stops making progress.
Before this module each solver hand-rolled a subset of these checks
(``cg_fused``/``dim3`` guarded curvature, plain ``cg`` did not, ``jacobi``
checked nothing); now they all share one :class:`BreakdownGuard` raising a
structured :class:`BreakdownError`.

``BreakdownError`` derives from :class:`ConvergenceError` so every existing
degradation path keeps working unchanged: PPCG's adaptive/degrade logic and
the harness sweeps already catch ``ConvergenceError``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.errors import ConvergenceError


class BreakdownError(ConvergenceError):
    """A solver recurrence broke down numerically.

    Carries the offending quantity so harnesses and the stability sweep can
    classify failures without parsing messages:

    Attributes
    ----------
    solver:
        Name of the solver whose recurrence broke (``cg``, ``ppcg``, ...).
    iteration:
        Outer iteration at which the breakdown was detected.
    quantity:
        Which scalar tripped the guard (``pAp``, ``beta``,
        ``residual_norm``).
    value:
        The offending value (possibly NaN/Inf).
    """

    def __init__(self, message: str, *, solver: str = "", iteration: int = 0,
                 quantity: str = "", value: float = math.nan, result=None):
        super().__init__(message, result=result)
        self.solver = solver
        self.iteration = iteration
        self.quantity = quantity
        self.value = value


@dataclass
class BreakdownGuard:
    """Per-solve breakdown checks shared by all iterative solvers.

    Parameters
    ----------
    solver:
        Solver name stamped into raised errors.
    stagnation_window:
        When positive, raise if the residual norm fails to improve by a
        relative ``stagnation_rtol`` over this many iterations.  Zero (the
        default) disables the window — CG residuals are legitimately
        non-monotonic, so stagnation detection is opt-in.
    stagnation_rtol:
        Minimum relative reduction expected across the window.
    strict:
        Enforce the *sign* of recurrence coefficients in
        :meth:`coefficient`.  Off by default: a transiently negative
        ``beta`` is routine for Chebyshev-preconditioned CG (the
        polynomial is only SPD when the estimated bounds bracket the true
        spectrum) and the recurrence recovers on its own — only
        non-finite coefficients are unconditionally fatal.
    """

    solver: str
    stagnation_window: int = 0
    stagnation_rtol: float = 1e-3
    strict: bool = False
    _recent: list = field(default_factory=list, repr=False)

    def _fail(self, iteration: int, quantity: str, value: float,
              detail: str) -> None:
        raise BreakdownError(
            f"{self.solver} breakdown: {detail} at iteration {iteration}",
            solver=self.solver, iteration=iteration, quantity=quantity,
            value=float(value))

    def curvature(self, value: float, iteration: int) -> None:
        """``<p, Ap>`` must be finite and positive for an SPD operator.

        The non-finite check runs *first*: ``NaN <= 0`` is False, which is
        exactly how an unguarded ``pw <= 0`` test lets a poisoned reduction
        slip through and silently NaN the whole recurrence.
        """
        if not math.isfinite(value):
            self._fail(iteration, "pAp", value,
                       f"<p, Ap> = {value!r} is non-finite")
        if value <= 0.0:
            self._fail(iteration, "pAp", value,
                       f"<p, Ap> = {value:.3e} <= 0 (operator not SPD?)")

    def coefficient(self, name: str, value: float, iteration: int) -> None:
        """Recurrence coefficients (``beta``) must be finite — and, in
        strict mode, non-negative."""
        if not math.isfinite(value):
            self._fail(iteration, name, value,
                       f"{name} = {value!r} is non-finite")
        if self.strict and value < 0.0:
            self._fail(iteration, name, value,
                       f"{name} = {value:.3e} < 0 (lost conjugacy?)")

    def residual(self, value: float, iteration: int) -> None:
        """Residual norms must stay finite and (windowed) decreasing."""
        if not math.isfinite(value):
            self._fail(iteration, "residual_norm", value,
                       "residual is non-finite (solver diverged)")
        if self.stagnation_window > 0:
            self._recent.append(float(value))
            if len(self._recent) > self.stagnation_window:
                oldest = self._recent.pop(0)
                if value > (1.0 - self.stagnation_rtol) * oldest:
                    self._fail(
                        iteration, "residual_norm", value,
                        f"residual stagnated across {self.stagnation_window} "
                        f"iterations ({oldest:.6e} -> {value:.6e})")

    def reset(self) -> None:
        """Clear the stagnation window (after a rollback or a splice)."""
        self._recent.clear()
