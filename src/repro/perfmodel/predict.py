"""Time-to-solution prediction for a configuration at scale.

The predictor combines

- the **actual decomposition geometry** (via :func:`repro.mesh.decompose`)
  of the target mesh over ``nodes x ranks_per_node`` ranks — message sizes,
  neighbour counts and intra/inter-node classification come from the same
  code the solvers run on, not from approximations;
- the configuration's **iteration profile** (allreduce/halo/kernel shape
  per outer iteration, validated against instrumented solves); and
- the machine's **network and node models**.

The MG-CG baseline additionally charges every V-cycle for its level
traversal: per-level smoothing kernels and halo exchanges whose message
sizes shrink with the level but whose *latencies do not* — plus the
coarse-grid gather/solve/broadcast and the one-time hierarchy setup.
This is the mechanism behind the paper's observation that AMG-type
solvers "struggle to perform well when strong scaling up into the
Petascale regime" while being fastest at low node counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.mesh.decomposition import Tile, decompose
from repro.mesh.grid import Grid2D
from repro.perfmodel.machines import Machine
from repro.perfmodel.profiles import (
    IterationProfile,
    MG_SMOOTH_BPC,
    MG_SMOOTH_KERNELS,
    MG_SMOOTH_SWEEPS,
    MG_TRANSFER_BPC,
    MG_TRANSFER_KERNELS,
    SolverConfig,
    build_profile,
    warmup_profile,
)
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive

#: Persistent arrays per cell (u, b, r, p, w, z, kx, ky, density, ...) used
#: for the cache-residency working set.
RESIDENT_ARRAYS = 10
#: Per-phase factor for a halo exchange (post sends, wait both sides).
HALO_PHASE_FACTOR = 2.0
#: Coarsest MG level size (global cells per side).
MG_COARSE_SIDE = 8
#: MG setup cost, in equivalent V-cycles (hierarchy + comms setup).
MG_SETUP_CYCLES = 25.0


@dataclass(frozen=True)
class PredictedTime:
    """A single predicted point (one node count of one figure line)."""

    machine: str
    config: SolverConfig
    mesh_n: int
    nodes: int
    ranks: int
    seconds: float
    breakdown: dict

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (f"{self.machine} {self.config.label} N={self.mesh_n} "
                f"nodes={self.nodes}: {self.seconds:.3f}s")


def _representative_tile(grid: Grid2D, ranks: int) -> Tile:
    """An interior (max-neighbour, max-size) tile: the critical-path rank."""
    tiles = decompose(grid, ranks)
    px, py = tiles[0].px, tiles[0].py
    cx, cy = min(px // 2, px - 1), min(py // 2, py - 1)
    return tiles[cy * px + cx]


def _ext_cells(tile: Tile, ext: int) -> int:
    """Cells computed at loop-bounds extension ``ext`` (clipped at domain)."""
    e = tile.extension(ext)
    return ((tile.ny + e["up"] + e["down"])
            * (tile.nx + e["left"] + e["right"]))


def _neighbor_intra(tile: Tile, ranks_per_node: int) -> dict[str, bool]:
    """Whether each neighbour rank lives on the same node (rank//rpn)."""
    node = tile.rank // ranks_per_node
    out = {}
    for side, nbr in tile.neighbors.items():
        out[side] = (nbr is not None) and (nbr // ranks_per_node == node)
    return out


class _Coster:
    """Shared cost helpers bound to one (machine, decomposition) context."""

    def __init__(self, machine: Machine, tile: Tile, nodes: int,
                 ranks: int, ranks_per_node: int):
        self.m = machine
        self.tile = tile
        self.nodes = nodes
        self.ranks = ranks
        self.rpn = ranks_per_node
        self.intra = _neighbor_intra(tile, ranks_per_node)
        self.working_set = RESIDENT_ARRAYS * tile.n_cells * 8.0 * ranks_per_node
        # All ranks on a node stream concurrently through the same memory
        # system, so each sees 1/rpn of the node bandwidth.  Flat-MPI ranks
        # run plain loops (no OpenMP fork/join or kernel launch per stage).
        node = machine.node
        self._bw = node.effective_bandwidth(self.working_set) / ranks_per_node
        flat = (not node.is_gpu) and ranks_per_node > machine.default_ranks_per_node
        self._overhead = node.flat_overhead if flat else node.launch_overhead

    def kernel(self, cells: float, bytes_per_cell: float, kernels: int) -> float:
        return kernels * self._overhead + cells * bytes_per_cell / self._bw

    def halo(self, depth: int, fields: int,
             nx: int | None = None, ny: int | None = None) -> float:
        """One two-phase exchange of ``fields`` arrays at ``depth``."""
        net = self.m.network
        t = self.tile
        nx = t.nx if nx is None else nx
        ny = t.ny if ny is None else ny
        # Fixed per-exchange cost (GPU host staging; zero on CPUs).
        total = self.m.node.exchange_staging
        # x-phase: columns of ny*depth cells per field.
        bx = ny * depth * 8.0 * fields
        x_sides = [s for s in ("left", "right") if t.neighbors[s] is not None]
        if x_sides:
            per = max(net.p2p_time(bx, self.nodes, intra=self.intra[s])
                      for s in x_sides)
            total += HALO_PHASE_FACTOR * per
        # y-phase: rows of (nx + 2*depth)*depth cells per field.
        by = (nx + 2 * depth) * depth * 8.0 * fields
        y_sides = [s for s in ("down", "up") if t.neighbors[s] is not None]
        if y_sides:
            per = max(net.p2p_time(by, self.nodes, intra=self.intra[s])
                      for s in y_sides)
            total += HALO_PHASE_FACTOR * per
        return total

    def allreduce(self, count: float) -> float:
        return count * self.m.network.allreduce_time(self.ranks, self.nodes)

    def iteration(self, profile: IterationProfile) -> dict:
        """Cost one outer iteration, split by category."""
        compute = 0.0
        for st in profile.stages:
            compute += self.kernel(_ext_cells(self.tile, st.ext),
                                   st.bytes_per_cell, st.kernels)
        halo = sum(h.count * self.halo(h.depth, h.fields)
                   for h in profile.halos)
        reduce_t = self.allreduce(profile.allreduces)
        return {"compute": compute, "halo": halo, "allreduce": reduce_t}


def _mg_levels(mesh_n: int) -> int:
    """Global V-cycle depth down to ~``MG_COARSE_SIDE``-wide coarse grid."""
    return max(1, int(math.log2(max(mesh_n / MG_COARSE_SIDE, 2))))


#: Per-level growth of the AMG communication stencil: operator complexity
#: rises on coarse levels (Galerkin products widen the stencil), so each
#: successive level talks to ~this factor more neighbours.
MG_NEIGHBOR_GROWTH = 2.0
#: Nearest-neighbour message count on the finest level.
MG_BASE_NEIGHBORS = 4.0


def _mg_cycle_cost(c: _Coster, mesh_n: int) -> dict:
    """One V-cycle: per-level smoothing/transfers + coarse gather-solve.

    Coarse levels keep their latency cost while their compute shrinks —
    and their *message counts grow* (AMG operator complexity): this is why
    the baseline's strong scaling collapses past a few tens of nodes
    (paper Fig. 7 / §VIII "the set up cost for the nested operators is
    expensive", "stress the interconnect significantly").
    """
    levels = _mg_levels(mesh_n)
    compute = halo = 0.0
    t = c.tile
    net = c.m.network
    for li in range(levels):
        f = 2 ** li
        lnx = max(1, t.nx // f)
        lny = max(1, t.ny // f)
        cells = lnx * lny
        compute += c.kernel(
            cells, MG_SMOOTH_BPC, MG_SMOOTH_KERNELS) * MG_SMOOTH_SWEEPS
        compute += c.kernel(cells, MG_TRANSFER_BPC, MG_TRANSFER_KERNELS)
        # Messages per exchange grow with level depth (wider coarse
        # stencils), capped by the number of peers that exist.
        msgs = min(float(c.ranks - 1),
                   MG_BASE_NEIGHBORS * MG_NEIGHBOR_GROWTH ** li)
        if msgs > 0:
            per_msg = net.p2p_time(lny * 8.0, c.nodes, intra=False)
            halo += (MG_SMOOTH_SWEEPS + 1) * msgs * per_msg
    # Coarse grid: gather -> direct solve -> broadcast (serial bottleneck).
    stages = math.ceil(math.log2(max(c.ranks, 2)))
    coarse_cells = MG_COARSE_SIDE ** 2
    coarse = (2.0 * stages * net.effective_latency(c.nodes)
              + c.m.node.launch_overhead
              + coarse_cells * 200.0 / c.m.node.dram_bandwidth)
    return {"compute": compute, "halo": halo, "coarse": coarse}


def predict_solve_time(
    machine: Machine,
    config: SolverConfig,
    mesh_n: int,
    nodes: int,
    *,
    outer_iters: float,
    warmup_iters: float = 25.0,
    n_steps: int = 1,
    ranks_per_node: int | None = None,
) -> PredictedTime:
    """Predict wall-clock seconds for ``n_steps`` solves of the config.

    ``outer_iters`` is the per-step outer iteration count (measured /
    extrapolated by :mod:`repro.perfmodel.iterations`).
    """
    check_positive("mesh_n", mesh_n)
    check_positive("nodes", nodes)
    check_positive("outer_iters", outer_iters)
    if nodes > machine.max_nodes:
        raise ConfigurationError(
            f"{machine.name} has at most {machine.max_nodes} nodes, "
            f"asked for {nodes}")
    rpn = ranks_per_node if ranks_per_node is not None \
        else machine.default_ranks_per_node
    ranks = nodes * rpn
    grid = Grid2D(mesh_n, mesh_n)
    if ranks > min(grid.nx, grid.ny) ** 2:
        raise ConfigurationError(
            f"{ranks} ranks exceed {mesh_n}x{mesh_n} cells")
    tile = _representative_tile(grid, ranks)
    c = _Coster(machine, tile, nodes, ranks, rpn)

    profile = build_profile(config)
    per_iter = c.iteration(profile)
    breakdown = {k: v * outer_iters for k, v in per_iter.items()}
    breakdown.setdefault("coarse", 0.0)
    breakdown["setup"] = 0.0

    if config.solver == "mgcg":
        cyc = _mg_cycle_cost(c, mesh_n)
        breakdown["compute"] += cyc["compute"] * outer_iters
        breakdown["halo"] += cyc["halo"] * outer_iters
        breakdown["coarse"] += cyc["coarse"] * outer_iters
        breakdown["setup"] += MG_SETUP_CYCLES * (
            cyc["compute"] + cyc["halo"] + cyc["coarse"])
    elif config.solver == "ppcg":
        warm = c.iteration(warmup_profile())
        for k, v in warm.items():
            breakdown[k] += v * warmup_iters

    per_step = sum(breakdown.values())
    seconds = per_step * n_steps * machine.time_scale
    breakdown = {k: v * n_steps * machine.time_scale
                 for k, v in breakdown.items()}
    return PredictedTime(machine=machine.name, config=config, mesh_n=mesh_n,
                         nodes=nodes, ranks=ranks, seconds=seconds,
                         breakdown=breakdown)


def predict_scaling(
    machine: Machine,
    config: SolverConfig,
    mesh_n: int,
    node_counts: list[int],
    *,
    outer_iters: float,
    warmup_iters: float = 25.0,
    n_steps: int = 1,
    ranks_per_node: int | None = None,
) -> list[PredictedTime]:
    """One figure line: predictions across ``node_counts``."""
    return [
        predict_solve_time(machine, config, mesh_n, nodes,
                           outer_iters=outer_iters,
                           warmup_iters=warmup_iters,
                           n_steps=n_steps,
                           ranks_per_node=ranks_per_node)
        for nodes in node_counts
    ]
