"""Strong-scaling efficiency metrics (paper Fig. 8)."""

from __future__ import annotations

from repro.perfmodel.predict import PredictedTime
from repro.utils.errors import ConfigurationError


def scaling_efficiency(node_counts: list[int], times: list[float]) -> list[float]:
    """Efficiency relative to the smallest node count.

    ``eff(P) = (t_0 * P_0) / (t_P * P)``; 1.0 is perfect strong scaling and
    values above 1.0 are super-linear (Spruce's cache effect in Fig. 8).
    """
    if len(node_counts) != len(times) or not node_counts:
        raise ConfigurationError("node_counts and times must align (non-empty)")
    if any(t <= 0 for t in times) or any(p <= 0 for p in node_counts):
        raise ConfigurationError("node counts and times must be positive")
    base = times[0] * node_counts[0]
    return [base / (t * p) for p, t in zip(node_counts, times)]


def best_time(series: dict[str, list[PredictedTime]]) -> dict[str, PredictedTime]:
    """Fastest point per labelled line (used to pick Fig. 8's best configs)."""
    return {label: min(points, key=lambda p: p.seconds)
            for label, points in series.items() if points}


def speedup(times: list[float]) -> list[float]:
    """Speedup relative to the first entry."""
    if not times or times[0] <= 0:
        raise ConfigurationError("need a positive baseline time")
    return [times[0] / t for t in times]
