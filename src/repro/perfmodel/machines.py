"""Machine registry: the paper's Table I systems, as model parameters.

+----------------+----------------+------------------+------------------+
|                | Spruce         | Piz Daint        | Titan            |
+================+================+==================+==================+
| Compute device | E5-2680v2 (x2) | NVIDIA K20x      | NVIDIA K20x      |
| Interconnect   | SGI ICE-X      | Cray Aries       | Cray Gemini      |
| Max nodes used | 1024           | 2048             | 8192             |
+----------------+----------------+------------------+------------------+

Node-level constants come from public hardware characteristics (K20x
~180 GB/s effective STREAM, ~7.5 us kernel launch; dual E5-2680v2
~85 GB/s STREAM, 2x25 MB LLC); network constants are representative of the
published MPI microbenchmarks for each interconnect generation.  A single
per-machine ``time_scale`` calibrates absolute seconds to the paper's
anchor points (see EXPERIMENTS.md) without affecting any shape claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.perfmodel.network import LinkModel, NetworkModel, Topology
from repro.utils.validation import check_positive

MB = 1024 * 1024
GB = 1e9


@dataclass(frozen=True)
class NodeModel:
    """Per-node compute model (memory-bandwidth bound kernels).

    ``kernel_time = launch_overhead + bytes / effective_bandwidth`` where the
    effective bandwidth switches from DRAM to last-level-cache speed when the
    resident working set fits in cache (``cache_size > 0``) — the mechanism
    behind Spruce's super-linear strong scaling (Fig. 8).
    """

    name: str
    dram_bandwidth: float            # bytes/s, whole node (shared by ranks)
    launch_overhead: float           # s per kernel (GPU launch / OMP region)
    cache_size: float = 0.0          # bytes of LLC participating (0: no model)
    cache_bandwidth: float = 0.0     # bytes/s when resident in LLC
    is_gpu: bool = False
    #: per-kernel overhead of a flat-MPI rank (plain loops, no fork/join)
    flat_overhead: float = 0.3e-6
    #: fixed cost per halo-exchange event: device<->host staging + MPI stack
    #: entry.  Dominant for K20x-era GPUs (no GPUDirect in these runs) and
    #: the reason deeper matrix-powers halos keep paying off on GPUs while
    #: CPUs plateau at depth ~8 (paper §VI).
    exchange_staging: float = 0.0

    def __post_init__(self):
        check_positive("dram_bandwidth", self.dram_bandwidth)
        check_positive("launch_overhead", self.launch_overhead)

    def effective_bandwidth(self, working_set: float) -> float:
        """Bandwidth given the per-node resident working set in bytes."""
        if self.cache_size <= 0 or working_set >= self.cache_size:
            return self.dram_bandwidth
        # Smooth ramp: fully cache-resident sets get full LLC bandwidth.
        frac = working_set / self.cache_size
        return self.cache_bandwidth * (1 - frac) + self.dram_bandwidth * frac

    def kernel_time(self, nbytes: float, working_set: float) -> float:
        return self.launch_overhead + nbytes / self.effective_bandwidth(working_set)


@dataclass(frozen=True)
class Machine:
    """A complete system model."""

    name: str
    node: NodeModel
    network: NetworkModel
    max_nodes: int
    default_ranks_per_node: int = 1
    cores_per_node: int = 16
    #: Calibration multiplier mapping model seconds to paper seconds.
    time_scale: float = 1.0

    def with_time_scale(self, scale: float) -> "Machine":
        return replace(self, time_scale=scale)


# -- the paper's systems -------------------------------------------------------

TITAN = Machine(
    name="Titan",
    node=NodeModel(
        name="NVIDIA K20x",
        dram_bandwidth=140 * GB,     # effective device STREAM
        launch_overhead=7.5e-6,      # CUDA kernel launch
        is_gpu=True,
        exchange_staging=30e-6,      # D2H + H2D staging per exchange
    ),
    network=NetworkModel(
        inter_node=LinkModel(latency=1.6e-6, bandwidth=4.5 * GB),
        intra_node=LinkModel(latency=0.6e-6, bandwidth=8.0 * GB),
        topology=Topology.TORUS_3D,
        hop_latency=140e-9,          # Gemini per-hop
        allreduce_stage_factor=1.3,
    ),
    max_nodes=8192,
    default_ranks_per_node=1,        # one MPI rank per GPU node
    cores_per_node=16,
    # Calibrated on the paper's anchor: PPCG-16 = 4.26 s at 8192 nodes.
    time_scale=1.26,
)

PIZ_DAINT = Machine(
    name="Piz Daint",
    node=NodeModel(
        name="NVIDIA K20x",
        dram_bandwidth=140 * GB,
        launch_overhead=7.0e-6,      # newer driver stack, slightly lower
        is_gpu=True,
        exchange_staging=25e-6,      # slightly faster host path than Titan
    ),
    network=NetworkModel(
        inter_node=LinkModel(latency=1.1e-6, bandwidth=9.0 * GB),
        intra_node=LinkModel(latency=0.5e-6, bandwidth=10.0 * GB),
        topology=Topology.DRAGONFLY,
        hop_latency=100e-9,          # Aries adaptive routing
        allreduce_stage_factor=1.0,
    ),
    max_nodes=2048,
    default_ranks_per_node=1,
    cores_per_node=8,
    # Calibrated on the paper's anchor: PPCG-16 = 2.79 s at 2048 nodes.
    time_scale=1.07,
)

SPRUCE = Machine(
    name="Spruce",
    node=NodeModel(
        name="2x E5-2680v2",
        dram_bandwidth=85 * GB,      # dual-socket STREAM
        launch_overhead=2.0e-6,      # OpenMP parallel-region entry
        cache_size=50 * MB,          # 2 x 25 MB LLC
        cache_bandwidth=400 * GB,
        is_gpu=False,
    ),
    network=NetworkModel(
        inter_node=LinkModel(latency=1.2e-6, bandwidth=6.0 * GB),
        intra_node=LinkModel(latency=0.3e-6, bandwidth=20.0 * GB),
        topology=Topology.FAT_TREE,
        hop_latency=120e-9,
        allreduce_stage_factor=1.0,
    ),
    max_nodes=1024,
    default_ranks_per_node=2,        # hybrid: one rank per NUMA domain
    cores_per_node=20,
)

#: All paper machines by name.
MACHINES: dict[str, Machine] = {
    m.name: m for m in (TITAN, PIZ_DAINT, SPRUCE)
}
