"""Analytic performance model for the paper's strong-scaling studies.

The paper measures wall-clock on Titan (8192 Cray Gemini / K20x nodes),
Piz Daint (2048 Cray Aries / K20x nodes) and Spruce (1024 SGI ICE-X CPU
nodes).  None of that hardware exists here, so this package predicts
time-to-solution from first principles:

- **network**: Hockney alpha-beta links with topology-dependent hop latency
  (3D torus for Gemini, dragonfly for Aries, fat-tree for ICE-X) and a
  binomial-tree allreduce — the log(P) global-reduction cost whose
  avoidance is CPPCG's whole point;
- **node**: memory-bandwidth-bound kernels with per-kernel launch overhead
  (the GPU strong-scaling floor) and an LLC cache model (the source of
  Spruce's super-linear speedups in Fig. 8);
- **profiles**: per-iteration communication/computation shapes of each
  solver configuration, derived analytically and *validated against the
  instrumented event logs of real decomposed solves* in the test-suite;
- **iterations**: iteration counts measured from real solves at tractable
  mesh sizes and extrapolated to the paper's 4000x4000 via the sqrt(kappa) law
  (Eqs. 6-7), itself validated empirically.

Absolute seconds are calibrated to the paper's anchor points; the model's
claims are about *shape* — crossovers, plateaus, halo-depth and
interconnect effects.
"""

from repro.perfmodel.network import LinkModel, NetworkModel, Topology
from repro.perfmodel.machines import (
    Machine,
    NodeModel,
    MACHINES,
    TITAN,
    PIZ_DAINT,
    SPRUCE,
)
from repro.perfmodel.profiles import (
    SolverConfig,
    IterationProfile,
    build_profile,
)
from repro.perfmodel.predict import (
    PredictedTime,
    predict_solve_time,
    predict_scaling,
)
from repro.perfmodel.iterations import (
    IterationModel,
    measure_iteration_counts,
    fit_iteration_model,
)
from repro.perfmodel.efficiency import scaling_efficiency, best_time
from repro.perfmodel.weak import (
    predict_weak_scaling,
    weak_efficiency,
    weak_mesh_side,
)
from repro.perfmodel.sensitivity import (
    KNOBS,
    scaled_machine,
    sensitivities,
    sweep_knob,
)

__all__ = [
    "LinkModel",
    "NetworkModel",
    "Topology",
    "Machine",
    "NodeModel",
    "MACHINES",
    "TITAN",
    "PIZ_DAINT",
    "SPRUCE",
    "SolverConfig",
    "IterationProfile",
    "build_profile",
    "PredictedTime",
    "predict_solve_time",
    "predict_scaling",
    "IterationModel",
    "measure_iteration_counts",
    "fit_iteration_model",
    "scaling_efficiency",
    "best_time",
    "predict_weak_scaling",
    "weak_efficiency",
    "weak_mesh_side",
    "KNOBS",
    "scaled_machine",
    "sensitivities",
    "sweep_knob",
]
