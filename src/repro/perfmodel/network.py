"""Interconnect models: Hockney links, topology hops, tree allreduce.

A point-to-point message costs ``alpha_eff(P) + nbytes / bandwidth`` where
the effective latency includes an average hop count that depends on the
topology — this is what separates Titan's Gemini 3D torus (hops grow like
``P^(1/3)``) from Piz Daint's Aries dragonfly (hop count nearly constant),
the paper's explanation for the 47% gap at 2048 nodes (Fig. 5 vs Fig. 6).

An allreduce is modelled as a binomial reduce+broadcast tree:
``2 * ceil(log2 P)`` sequential stages, each paying one small-message
latency.  "An optimal implementation of these reductions will ensure that
the latency overhead scales logarithmically with the number of nodes"
(§III-A) — this term is the scaling bottleneck CPPCG attacks.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.utils.validation import check_positive, require


class Topology(str, enum.Enum):
    """Interconnect topology class, deciding how hop counts grow with P."""

    TORUS_3D = "torus3d"      # Cray Gemini (Titan)
    DRAGONFLY = "dragonfly"   # Cray Aries (Piz Daint)
    FAT_TREE = "fat_tree"     # SGI ICE-X (Spruce)

    def average_hops(self, nodes: int) -> float:
        """Expected router hops between two random nodes."""
        if nodes <= 1:
            return 0.0
        if self is Topology.TORUS_3D:
            # Mean Manhattan distance on a P^(1/3)-ary 3-cube.
            return 0.75 * nodes ** (1.0 / 3.0)
        if self is Topology.DRAGONFLY:
            # Minimal-route dragonfly: local-global-local, ~constant.
            return 3.0
        # Folded Clos / fat tree: up-down through ~log levels.
        return max(1.0, math.log2(nodes))


@dataclass(frozen=True)
class LinkModel:
    """One Hockney alpha-beta link."""

    latency: float      # seconds (alpha)
    bandwidth: float    # bytes/second (1/beta)

    def __post_init__(self):
        check_positive("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)

    def time(self, nbytes: float) -> float:
        require(nbytes >= 0, f"negative message size {nbytes}")
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class NetworkModel:
    """A machine's interconnect.

    Parameters
    ----------
    inter_node:
        Base link between two adjacent nodes (per-hop latency added on top).
    intra_node:
        Link between two ranks on the same node (shared memory).
    topology:
        Governs hop growth with node count.
    hop_latency:
        Extra latency per router hop.
    allreduce_stage_factor:
        Multiplier on the per-stage latency of the reduction tree
        (captures software/NIC overhead of collective stages).
    """

    inter_node: LinkModel
    intra_node: LinkModel
    topology: Topology
    hop_latency: float = 100e-9
    allreduce_stage_factor: float = 1.0

    def effective_latency(self, nodes: int) -> float:
        """Point-to-point latency between random nodes at machine scale."""
        return (self.inter_node.latency
                + self.hop_latency * self.topology.average_hops(nodes))

    def p2p_time(self, nbytes: float, nodes: int, intra: bool = False) -> float:
        """One message between neighbouring ranks.

        Halo neighbours are topologically close, so they pay the base link
        plus a small constant number of hops rather than the machine-scale
        average.
        """
        if intra:
            return self.intra_node.time(nbytes)
        near_hops = min(2.0, self.topology.average_hops(nodes))
        return (self.inter_node.time(nbytes) + self.hop_latency * near_hops)

    def allreduce_time(self, ranks: int, nodes: int, nbytes: float = 8.0) -> float:
        """Binomial-tree reduce + broadcast over ``ranks`` endpoints.

        Tree stages that cross nodes pay machine-scale latency (the
        reduction spans the whole system); intra-node stages are cheap.
        """
        if ranks <= 1:
            return 0.0
        stages = math.ceil(math.log2(ranks))
        node_stages = math.ceil(math.log2(max(nodes, 1))) if nodes > 1 else 0
        local_stages = max(0, stages - node_stages)
        per_inter = (self.effective_latency(nodes)
                     + nbytes / self.inter_node.bandwidth)
        per_intra = self.intra_node.time(nbytes)
        return (2.0 * self.allreduce_stage_factor
                * (node_stages * per_inter + local_stages * per_intra))
