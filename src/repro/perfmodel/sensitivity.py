"""Design-space sensitivity analysis over machine parameters.

TeaLeaf exists "to enable design-space explorations"; beyond reproducing
the paper's three machines, this module answers *what-if* questions about
future systems: how does a configuration's time-to-solution move when the
interconnect latency, link bandwidth, node memory bandwidth or kernel
launch overhead is scaled?  Each knob is varied independently (one-at-a-
time sensitivity), which cleanly attributes the strong-scaling limits —
e.g. CPPCG-16 on Titan at 8192 nodes is launch-overhead dominated, while
CG-1 is allreduce-latency dominated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.perfmodel.machines import Machine, NodeModel
from repro.perfmodel.network import LinkModel, NetworkModel
from repro.perfmodel.predict import PredictedTime, predict_solve_time
from repro.perfmodel.profiles import SolverConfig
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive

#: The tunable machine knobs, by name.
KNOBS = (
    "network_latency",      # inter-node alpha + hop latency
    "network_bandwidth",    # inter-node link bandwidth
    "node_bandwidth",       # DRAM (and cache) bandwidth
    "launch_overhead",      # per-kernel cost
)


def scaled_machine(machine: Machine, knob: str, factor: float) -> Machine:
    """A copy of ``machine`` with one knob scaled by ``factor``."""
    check_positive("factor", factor)
    if knob == "network_latency":
        net = machine.network
        new_net = replace(
            net,
            inter_node=LinkModel(latency=net.inter_node.latency * factor,
                                 bandwidth=net.inter_node.bandwidth),
            hop_latency=net.hop_latency * factor,
        )
        return replace(machine, network=new_net)
    if knob == "network_bandwidth":
        net = machine.network
        new_net = replace(
            net,
            inter_node=LinkModel(latency=net.inter_node.latency,
                                 bandwidth=net.inter_node.bandwidth * factor),
        )
        return replace(machine, network=new_net)
    if knob == "node_bandwidth":
        node = machine.node
        new_node = replace(
            node,
            dram_bandwidth=node.dram_bandwidth * factor,
            cache_bandwidth=node.cache_bandwidth * factor,
        )
        return replace(machine, node=new_node)
    if knob == "launch_overhead":
        node = machine.node
        new_node = replace(node,
                           launch_overhead=node.launch_overhead * factor,
                           exchange_staging=node.exchange_staging * factor)
        return replace(machine, node=new_node)
    raise ConfigurationError(
        f"unknown knob {knob!r}; expected one of {KNOBS}")


@dataclass(frozen=True)
class SensitivityPoint:
    knob: str
    factor: float
    seconds: float


def sweep_knob(
    machine: Machine,
    config: SolverConfig,
    knob: str,
    factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    *,
    mesh_n: int = 4000,
    nodes: int = 1024,
    outer_iters: float = 1000.0,
    n_steps: int = 1,
    ranks_per_node: int | None = None,
) -> list[SensitivityPoint]:
    """Time-to-solution as one knob scales (factor 1.0 = the real machine)."""
    out = []
    for factor in factors:
        m = scaled_machine(machine, knob, factor)
        p = predict_solve_time(m, config, mesh_n, nodes,
                               outer_iters=outer_iters, n_steps=n_steps,
                               ranks_per_node=ranks_per_node)
        out.append(SensitivityPoint(knob=knob, factor=factor,
                                    seconds=p.seconds))
    return out


def sensitivities(
    machine: Machine,
    config: SolverConfig,
    *,
    mesh_n: int = 4000,
    nodes: int = 1024,
    outer_iters: float = 1000.0,
    delta: float = 2.0,
    ranks_per_node: int | None = None,
) -> dict[str, float]:
    """Relative slowdown per knob when it degrades by ``delta``x.

    A value near ``1.0`` means the knob is irrelevant at this operating
    point; the largest value identifies the binding constraint.
    """
    base = predict_solve_time(machine, config, mesh_n, nodes,
                              outer_iters=outer_iters,
                              ranks_per_node=ranks_per_node).seconds
    out = {}
    for knob in KNOBS:
        worse = delta if knob in ("network_latency", "launch_overhead") \
            else 1.0 / delta
        m = scaled_machine(machine, knob, worse)
        t = predict_solve_time(m, config, mesh_n, nodes,
                               outer_iters=outer_iters,
                               ranks_per_node=ranks_per_node).seconds
        out[knob] = t / base
    return out
