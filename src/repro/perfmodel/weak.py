"""Weak-scaling prediction — and why the paper avoided it.

§VI: "Weak scaling performance would also be more difficult to
characterize: the nature of the algorithm means that increasing the mesh
size also increases the condition number, the number of iterations required
to converge, and hence the time to solution."

This module makes that argument quantitative: under weak scaling the mesh
side grows like ``sqrt(P)``, iteration counts grow linearly in the mesh side
(the sqrt(kappa) law), so even with perfect per-iteration scaling the time to
solution grows like ``sqrt(P)`` — weak efficiency decays by construction, for
CG and CPPCG alike (multigrid being the fix, which is the paper's closing
motivation for its future work).
"""

from __future__ import annotations

import math

from repro.perfmodel.iterations import IterationModel
from repro.perfmodel.machines import Machine
from repro.perfmodel.predict import PredictedTime, predict_solve_time
from repro.perfmodel.profiles import SolverConfig
from repro.utils.validation import check_positive


def weak_mesh_side(local_side: int, nodes: int,
                   ranks_per_node: int = 1) -> int:
    """Global mesh side keeping ~``local_side^2`` cells per rank."""
    check_positive("local_side", local_side)
    ranks = nodes * ranks_per_node
    return max(1, round(local_side * math.sqrt(ranks)))


def predict_weak_scaling(
    machine: Machine,
    config: SolverConfig,
    local_side: int,
    node_counts: list[int],
    iteration_model: IterationModel,
    *,
    n_steps: int = 1,
    ranks_per_node: int | None = None,
) -> list[PredictedTime]:
    """Weak-scaling series: fixed work per rank, growing global problem.

    The iteration count is re-evaluated at each point's global mesh size —
    this coupling (not the communication) is what ruins weak scaling for
    Krylov solvers on this operator.
    """
    rpn = ranks_per_node if ranks_per_node is not None \
        else machine.default_ranks_per_node
    out = []
    for nodes in node_counts:
        mesh_n = weak_mesh_side(local_side, nodes, rpn)
        iters = iteration_model(mesh_n)
        out.append(predict_solve_time(
            machine, config, mesh_n, nodes,
            outer_iters=iters, n_steps=n_steps, ranks_per_node=rpn))
    return out


def weak_efficiency(points: list[PredictedTime]) -> list[float]:
    """``t_1 / t_P`` under weak scaling (1.0 = perfect)."""
    base = points[0].seconds
    return [base / p.seconds for p in points]
