"""Iteration-count measurement and mesh-size extrapolation.

For this operator the condition number grows like ``kappa ~ 1 + c N^2`` at
fixed time step (``rx = dt/dx^2`` with ``dx ~ 1/N``), so CG iterations grow
linearly in ``N`` (Eq. 6) and CPPCG outer iterations grow linearly with a
much smaller slope (Eq. 7).  MG-CG iteration counts are nearly
``N``-independent (that is the point of multigrid).

We therefore *measure* iteration counts with real solves of the
crooked-pipe first step at tractable mesh sizes, fit ``iters = a + b N``,
and evaluate the fit at the paper's 4000.  The linearity itself is
validated empirically in the test-suite and the Fig. 5 ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.comm.serial import SerialComm
from repro.mesh.decomposition import decompose
from repro.mesh.field import Field
from repro.mesh.grid import Grid2D
from repro.perfmodel.profiles import SolverConfig
from repro.physics.conduction import cell_conductivity
from repro.physics.problems import crooked_pipe
from repro.physics.state import global_initial_state
from repro.physics.conduction import face_coefficients
from repro.solvers.driver import solve_linear
from repro.solvers.operator import StencilOperator2D
from repro.solvers.options import SolverOptions
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive

#: Default measurement mesh sizes (kept small: these run real solves).
DEFAULT_MEASURE_SIZES = (64, 96, 128)


def _options_for(config: SolverConfig, eps: float) -> SolverOptions:
    return SolverOptions(
        solver=config.solver,
        eps=eps,
        max_iters=100_000,
        preconditioner=config.preconditioner,
        ppcg_inner_steps=config.inner_steps,
        halo_depth=config.halo_depth,
    )


@lru_cache(maxsize=256)
def _measure_one(config_key: tuple, mesh_n: int, eps: float, dt: float
                 ) -> tuple[int, int, int]:
    """Solve the crooked-pipe first step serially; return iteration counts.

    Returns ``(outer, inner, warmup)``.
    """
    config = SolverConfig(*config_key)
    grid = Grid2D(mesh_n, mesh_n)
    density, _, u0 = global_initial_state(grid, crooked_pipe())
    kappa = cell_conductivity(density)
    rx = dt / grid.dx ** 2
    ry = dt / grid.dy ** 2
    kxg, kyg = face_coefficients(kappa, rx, ry)
    opts = _options_for(config, eps)
    tile = decompose(grid, 1)[0]
    op = StencilOperator2D.from_global_faces(
        tile, opts.required_field_halo, kxg, kyg, SerialComm())
    b = Field.from_global(tile, opts.required_field_halo, u0)
    result = solve_linear(op, b, options=opts)
    if not result.converged:
        raise ConfigurationError(
            f"measurement solve did not converge: {result.summary()}")
    return (result.iterations, result.inner_iterations,
            result.warmup_iterations)


def measure_iteration_counts(
    config: SolverConfig,
    mesh_sizes: tuple[int, ...] = DEFAULT_MEASURE_SIZES,
    eps: float = 1e-10,
    dt: float = 0.04,
) -> dict[int, int]:
    """Outer-iteration counts from real solves at each mesh size."""
    key = (config.solver, config.inner_steps, config.halo_depth,
           config.preconditioner)
    return {n: _measure_one(key, n, eps, dt)[0] for n in mesh_sizes}


@dataclass(frozen=True)
class IterationModel:
    """Iteration-count growth model (floored at 1).

    ``form="linear"``: ``iters(N) = a + b N`` — the sqrt(kappa) ~ N law of CG-type
    solvers on this operator.  ``form="log"``: ``iters(N) = a + b ln N`` —
    the near-mesh-independent convergence of multigrid-preconditioned CG.
    """

    a: float
    b: float
    measured: tuple[tuple[int, int], ...]
    form: str = "linear"

    def _basis(self, mesh_n) -> np.ndarray:
        x = np.asarray(mesh_n, dtype=float)
        return np.log(x) if self.form == "log" else x

    def __call__(self, mesh_n: int) -> float:
        check_positive("mesh_n", mesh_n)
        return max(1.0, self.a + self.b * float(self._basis(mesh_n)))

    @property
    def r_squared(self) -> float:
        ns = np.array([n for n, _ in self.measured], dtype=float)
        ys = np.array([y for _, y in self.measured], dtype=float)
        pred = self.a + self.b * self._basis(ns)
        ss_res = float(np.sum((ys - pred) ** 2))
        ss_tot = float(np.sum((ys - ys.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def fit_iteration_model(
    config: SolverConfig,
    mesh_sizes: tuple[int, ...] = DEFAULT_MEASURE_SIZES,
    eps: float = 1e-10,
    dt: float = 0.04,
) -> IterationModel:
    """Measure at ``mesh_sizes`` and least-squares fit the growth law.

    Krylov configurations fit linearly in ``N``; MG-CG fits in ``ln N``
    (multigrid's iteration count is nearly mesh-independent, so linear
    extrapolation of its tiny slope would wildly overshoot at 4000).
    """
    form = "log" if config.solver == "mgcg" else "linear"
    counts = measure_iteration_counts(config, mesh_sizes, eps=eps, dt=dt)
    ns = np.array(sorted(counts), dtype=float)
    ys = np.array([counts[int(n)] for n in ns], dtype=float)
    measured = tuple((int(n), int(y)) for n, y in zip(ns, ys))
    if len(ns) == 1:
        return IterationModel(a=float(ys[0]), b=0.0, measured=measured,
                              form=form)
    xs = np.log(ns) if form == "log" else ns
    b, a = np.polyfit(xs, ys, 1)
    return IterationModel(a=float(a), b=float(b), measured=measured, form=form)
