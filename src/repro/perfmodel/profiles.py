"""Per-iteration communication/computation shapes of each solver config.

A profile answers, for one *outer* iteration of a configuration: how many
global reductions happen, which halo exchanges (depth, packed fields,
count) occur, and which kernels run at which matrix-powers loop-bounds
extension.  These shapes are derived from the algorithms — and the
test-suite asserts they match the instrumented event logs of real
decomposed solves, so the model can't silently drift from the code.

Byte-per-cell constants count the streamed arrays of each kernel (8 B per
read or write of a float64 cell value), which is the right currency for
memory-bandwidth-bound solvers (§III-A: "local operations are vector
triads ... local memory bandwidth limited").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.validation import check_in, check_positive

#: matvec: read p, kx, ky; write w.
MATVEC_BPC = 32.0
#: CG outer housekeeping: dots (p.w, r.r/r.z) + axpy x, r + p update.
CG_VECTOR_BPC = 104.0
CG_VECTOR_KERNELS = 5
#: Chebyshev inner step housekeeping: z += d, r -= w, d recurrence.
CHEBY_VECTOR_BPC = 80.0
CHEBY_VECTOR_KERNELS = 3
#: Extra cost of a local preconditioner application (z = M^-1 r).
PRECOND_BPC = {"none": 0.0, "diagonal": 24.0, "block_jacobi": 72.0}
PRECOND_KERNELS = {"none": 0, "diagonal": 1, "block_jacobi": 2}


@dataclass(frozen=True)
class SolverConfig:
    """A point in the paper's design space (one line of Figs. 5-7)."""

    solver: str                     # cg | ppcg | mgcg
    inner_steps: int = 10           # Chebyshev degree (ppcg)
    halo_depth: int = 1             # matrix powers depth (ppcg)
    preconditioner: str = "none"    # local/inner preconditioner

    def __post_init__(self):
        check_in("solver", self.solver, ("cg", "cg_fused", "dcg",
                                         "ppcg", "mgcg"))
        check_positive("inner_steps", self.inner_steps)
        check_positive("halo_depth", self.halo_depth)
        check_in("preconditioner", self.preconditioner,
                 tuple(PRECOND_BPC))

    @property
    def label(self) -> str:
        base = {"cg": "CG", "cg_fused": "CG-F", "dcg": "DCG",
                "ppcg": "PPCG", "mgcg": "BoomerAMG*"}[self.solver]
        if self.solver == "mgcg":
            return base
        return f"{base} - {self.halo_depth}"


@dataclass(frozen=True)
class HaloSpec:
    """``count`` exchanges of ``fields`` packed arrays at ``depth``."""

    depth: int
    fields: int
    count: float


@dataclass(frozen=True)
class StageSpec:
    """A group of kernels running at loop-bounds extension ``ext``."""

    ext: int
    kernels: int
    bytes_per_cell: float


@dataclass(frozen=True)
class IterationProfile:
    """Costs of one outer iteration."""

    allreduces: float
    halos: tuple[HaloSpec, ...]
    stages: tuple[StageSpec, ...]

    @property
    def matvecs(self) -> int:
        """Stencil applications per outer iteration (any extension)."""
        return sum(1 for s in self.stages
                   if s.kernels == 1 and s.bytes_per_cell == MATVEC_BPC)

    def halo_exchange_count(self) -> float:
        return sum(h.count for h in self.halos)


def _cg_iteration(preconditioner: str = "none") -> IterationProfile:
    """CG: one matvec (depth-1 exchange), two fused reductions."""
    bpc = CG_VECTOR_BPC + PRECOND_BPC[preconditioner]
    kernels = CG_VECTOR_KERNELS + PRECOND_KERNELS[preconditioner]
    return IterationProfile(
        allreduces=2.0,
        halos=(HaloSpec(depth=1, fields=1, count=1.0),),
        stages=(
            StageSpec(ext=0, kernels=1, bytes_per_cell=MATVEC_BPC),
            StageSpec(ext=0, kernels=kernels, bytes_per_cell=bpc),
        ),
    )


def _ppcg_iteration(inner_steps: int, halo_depth: int,
                    preconditioner: str) -> IterationProfile:
    """CPPCG outer iteration: CG outer shape + m Chebyshev inner steps.

    Inner halo pattern (matches :class:`ChebyshevIteration` exactly):
    the first block exchanges only the residual; each subsequent block
    exchanges residual + direction at depth ``n`` (just the direction when
    ``n == 1``).  Inner step ``s`` of a block runs at extension
    ``n - 1 - s``.
    """
    m, n = inner_steps, halo_depth
    blocks = math.ceil(m / n)
    halos = [HaloSpec(depth=1, fields=1, count=1.0),       # outer matvec
             HaloSpec(depth=n, fields=1, count=1.0)]       # first inner block
    if blocks > 1:
        halos.append(HaloSpec(depth=n, fields=(2 if n > 1 else 1),
                              count=float(blocks - 1)))
    stages = [
        StageSpec(ext=0, kernels=1, bytes_per_cell=MATVEC_BPC),  # outer matvec
        StageSpec(ext=0, kernels=CG_VECTOR_KERNELS,
                  bytes_per_cell=CG_VECTOR_BPC),
    ]
    inner_bpc = (CHEBY_VECTOR_BPC + PRECOND_BPC[preconditioner])
    inner_kernels = CHEBY_VECTOR_KERNELS + PRECOND_KERNELS[preconditioner]
    for step in range(m):
        ext = n - 1 - (step % n)
        stages.append(StageSpec(ext=ext, kernels=1,
                                bytes_per_cell=MATVEC_BPC))
        stages.append(StageSpec(ext=ext, kernels=inner_kernels,
                                bytes_per_cell=inner_bpc))
    return IterationProfile(allreduces=2.0, halos=tuple(halos),
                            stages=tuple(stages))


#: MG-CG smoothing sweeps per level per V-cycle (pre + post, Jacobi).
MG_SMOOTH_SWEEPS = 4
#: Kernels / bytes-per-cell of one smoothing sweep (matvec + correction).
MG_SMOOTH_KERNELS = 2
MG_SMOOTH_BPC = 56.0
#: Residual + restrict + prolong-correct work per level per cycle.
MG_TRANSFER_KERNELS = 3
MG_TRANSFER_BPC = 64.0


def _mgcg_iteration(preconditioner: str = "none") -> IterationProfile:
    """MG-CG outer shape; the V-cycle levels are costed by the predictor."""
    return _cg_iteration(preconditioner)


def _cg_fused_iteration(preconditioner: str = "none") -> IterationProfile:
    """Chronopoulos-Gear CG: one reduction, one extra vector recurrence."""
    base = _cg_iteration(preconditioner)
    extra = StageSpec(ext=0, kernels=1, bytes_per_cell=24.0)  # s recurrence
    return IterationProfile(allreduces=1.0, halos=base.halos,
                            stages=base.stages + (extra,))


def _dcg_iteration(preconditioner: str = "none") -> IterationProfile:
    """Deflated CG: CG plus one projector (k-sized reduction + combine)."""
    base = _cg_iteration(preconditioner)
    project = StageSpec(ext=0, kernels=2, bytes_per_cell=32.0)
    return IterationProfile(allreduces=base.allreduces + 1.0,
                            halos=base.halos,
                            stages=base.stages + (project,))


def build_profile(config: SolverConfig) -> IterationProfile:
    """The per-outer-iteration profile of a configuration."""
    if config.solver == "cg":
        return _cg_iteration(config.preconditioner)
    if config.solver == "cg_fused":
        return _cg_fused_iteration(config.preconditioner)
    if config.solver == "dcg":
        return _dcg_iteration(config.preconditioner)
    if config.solver == "ppcg":
        return _ppcg_iteration(config.inner_steps, config.halo_depth,
                               config.preconditioner)
    return _mgcg_iteration(config.preconditioner)


def warmup_profile() -> IterationProfile:
    """Eigenvalue-estimation warm-up iterations are plain CG."""
    return _cg_iteration("none")
