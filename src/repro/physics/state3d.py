"""Rank-local 3D state and coefficient construction.

The 3D analogue of :mod:`repro.physics.state`: slice the global initial
state into rank-local :class:`Field3D` fields and build the padded face
coefficient fields that the distributed 7-point operator consumes.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.decomposition3d import Tile3D
from repro.mesh.field3d import Field3D
from repro.mesh.halo3d import HaloExchanger3D, reflect_boundaries_3d
from repro.physics.conduction import Conductivity, cell_conductivity
from repro.utils.errors import ConfigurationError


def build_fields_3d(
    tile: Tile3D,
    halo: int,
    density_global: np.ndarray,
    energy_global: np.ndarray,
) -> dict[str, Field3D]:
    """Slice this rank's 3D fields out of the global initial state."""
    density = Field3D.from_global(tile, halo, density_global)
    energy = Field3D.from_global(tile, halo, energy_global)
    u = Field3D(tile, halo)
    u.interior[...] = density.interior * energy.interior
    return {"density": density, "energy": energy, "u": u}


def build_coefficient_fields_3d(
    density: Field3D,
    rx: float,
    ry: float,
    rz: float,
    exchanger: HaloExchanger3D,
    model: Conductivity | str = Conductivity.RECIP_DENSITY,
    mean: str = "harmonic",
) -> tuple[Field3D, Field3D, Field3D]:
    """Padded rank-local ``(Kx, Ky, Kz)`` from the density field.

    Same contract as the 2D version: coefficients are valid over the whole
    padded array (full-depth density exchange + boundary reflection) and
    faces on the physical boundary are zero (insulated box).
    """
    tile, h = density.tile, density.halo
    exchanger.exchange(density, depth=h)
    reflect_boundaries_3d(density)
    pad = density.data
    pad[pad <= 0] = 1.0  # unreferenced outer corners
    kappa = cell_conductivity(pad, model)

    kx = Field3D(tile, h)
    ky = Field3D(tile, h)
    kz = Field3D(tile, h)
    if mean == "arithmetic":
        fx = 0.5 * (kappa[:, :, :-1] + kappa[:, :, 1:])
        fy = 0.5 * (kappa[:, :-1, :] + kappa[:, 1:, :])
        fz = 0.5 * (kappa[:-1, :, :] + kappa[1:, :, :])
    elif mean == "harmonic":
        fx = (2.0 * kappa[:, :, :-1] * kappa[:, :, 1:]
              / (kappa[:, :, :-1] + kappa[:, :, 1:]))
        fy = (2.0 * kappa[:, :-1, :] * kappa[:, 1:, :]
              / (kappa[:, :-1, :] + kappa[:, 1:, :]))
        fz = (2.0 * kappa[:-1, :, :] * kappa[1:, :, :]
              / (kappa[:-1, :, :] + kappa[1:, :, :]))
    else:
        raise ConfigurationError(f"unknown face mean {mean!r}")
    kx.data[:, :, 1:] = rx * fx
    ky.data[:, 1:, :] = ry * fy
    kz.data[1:, :, :] = rz * fz

    if tile.left is None:
        kx.data[:, :, h] = 0.0
    if tile.right is None:
        kx.data[:, :, h + tile.nx] = 0.0
    if tile.down is None:
        ky.data[:, h, :] = 0.0
    if tile.up is None:
        ky.data[:, h + tile.ny, :] = 0.0
    if tile.back is None:
        kz.data[h, :, :] = 0.0
    if tile.front is None:
        kz.data[h + tile.nz, :, :] = 0.0
    return kx, ky, kz
