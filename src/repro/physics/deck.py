"""TeaLeaf input-deck (``tea.in``) parsing.

The deck dialect is the one TeaLeaf ships: a ``*tea`` ... ``*endtea`` block of
``key=value`` settings, ``state N key=value ...`` lines defining the initial
regions, and bare flags such as ``use_cg`` selecting the solver.  Lines
starting with ``!`` or ``#`` are comments.

Example::

    *tea
    state 1 density=100.0 energy=0.0001
    state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
    x_cells=512
    y_cells=512
    initial_timestep=0.04
    end_time=15.0
    use_ppcg
    tl_ppcg_inner_steps=10
    tl_max_iters=10000
    tl_eps=1e-10
    *endtea
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mesh.grid import Grid2D
from repro.physics.conduction import Conductivity
from repro.physics.problems import ProblemSpec, RegionSpec
from repro.utils.errors import ConfigurationError

#: Bare-flag solver selectors, in TeaLeaf's spelling.
_SOLVER_FLAGS = {
    "use_jacobi": "jacobi",
    "tl_use_jacobi": "jacobi",
    "use_cg": "cg",
    "tl_use_cg": "cg",
    "use_chebyshev": "chebyshev",
    "tl_use_chebyshev": "chebyshev",
    "use_ppcg": "ppcg",
    "tl_use_ppcg": "ppcg",
    # library extensions (paper §VII future work)
    "use_cg_fused": "cg_fused",
    "use_dpcg": "dcg",
}

_PRECONDITIONERS = {"none": "none", "jac_diag": "diagonal",
                    "jac_block": "block_jacobi"}

#: Bare-flag resilience toggles (see :mod:`repro.resilience`).
_RESILIENCE_FLAGS = {
    "tl_enable_recovery": "tl_enable_recovery",
    "tl_enable_checksums": "tl_enable_checksums",
}

#: Bare-flag numerics toggles (see :mod:`repro.numerics`).
_NUMERICS_FLAGS = {
    "tl_enable_refinement": "tl_enable_refinement",
    "tl_check_true_residual": "tl_check_true_residual",
}


@dataclass
class Deck:
    """Parsed input deck with TeaLeaf defaults."""

    x_cells: int = 10
    y_cells: int = 10
    xmin: float = 0.0
    xmax: float = 10.0
    ymin: float = 0.0
    ymax: float = 10.0
    initial_timestep: float = 0.04
    end_time: float = 15.0
    states: list[RegionSpec] = field(default_factory=list)
    solver: str = "cg"
    tl_eps: float = 1e-10
    tl_max_iters: int = 10_000
    tl_ppcg_inner_steps: int = 10
    tl_ppcg_halo_depth: int = 1
    tl_preconditioner_type: str = "none"
    tl_coefficient: Conductivity = Conductivity.RECIP_DENSITY
    tl_eigen_warmup_iters: int = 25
    tl_checkpoint_interval: int = 0
    tl_checkpoint_dir: str = ""
    tl_abft_interval: int = 0
    tl_enable_recovery: bool = False
    tl_enable_checksums: bool = False
    tl_working_dtype: str = "float64"
    tl_kernel_backend: str = "numpy"
    tl_replace_interval: int = 0
    tl_comm_timeout: float = 0.0
    tl_enable_refinement: bool = False
    tl_check_true_residual: bool = False
    summary_frequency: int = 0
    visit_frequency: int = 0

    @property
    def grid(self) -> Grid2D:
        return Grid2D(self.x_cells, self.y_cells,
                      (self.xmin, self.xmax, self.ymin, self.ymax))

    @property
    def n_steps(self) -> int:
        return max(1, round(self.end_time / self.initial_timestep))


def _coerce(value: str):
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def _parse_state(tokens: list[str], lineno: int) -> tuple[int, RegionSpec]:
    try:
        index = int(tokens[1])
    except (IndexError, ValueError):
        raise ConfigurationError(f"line {lineno}: malformed state line")
    kv = {}
    for tok in tokens[2:]:
        if "=" not in tok:
            raise ConfigurationError(
                f"line {lineno}: expected key=value in state, got {tok!r}")
        key, val = tok.split("=", 1)
        key = key.strip()
        if key in kv:
            raise ConfigurationError(
                f"line {lineno}: duplicate key {key!r} in state {index}")
        kv[key] = _coerce(val.strip())
    geometry = kv.pop("geometry", "background" if index == 1 else None)
    if geometry is None:
        raise ConfigurationError(
            f"line {lineno}: state {index} needs geometry=")

    def _pop_float(name: str) -> float:
        try:
            value = kv.pop(name)
        except KeyError:
            raise ConfigurationError(
                f"line {lineno}: state {index} ({geometry}) "
                f"missing {name!r}") from None
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"line {lineno}: state {index}: bad value for "
                f"{name}: {value!r}") from None

    density = _pop_float("density")
    energy = _pop_float("energy")
    needed = {"rectangle": ("xmin", "xmax", "ymin", "ymax"),
              "circle": ("xcentre", "ycentre", "radius"),
              "point": ("xcentre", "ycentre")}.get(geometry, ())
    bounds = tuple(_pop_float(b) for b in needed)
    if kv:
        raise ConfigurationError(
            f"line {lineno}: unknown state keys {sorted(kv)}")
    return index, RegionSpec(density=density, energy=energy,
                             geometry=geometry, bounds=bounds)


def parse_deck_text(text: str) -> Deck:
    """Parse deck text (with or without the ``*tea`` wrapper).

    Every malformed input — unknown keys, wrong-typed values, duplicate
    settings or state indices, conflicting solver flags — raises a
    :class:`~repro.utils.errors.ConfigurationError` naming the key and
    the line number; no raw ``ValueError``/``KeyError`` ever escapes.
    """
    deck = Deck()
    states: dict[int, RegionSpec] = {}
    seen: dict[str, int] = {}

    def _first_use(key: str, lineno: int, what: str = "setting") -> None:
        if key in seen:
            raise ConfigurationError(
                f"line {lineno}: duplicate {what} {key!r} "
                f"(first set on line {seen[key]})")
        seen[key] = lineno

    in_block = "*tea" not in text
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("!")[0].split("#")[0].strip()
        if not line:
            continue
        low = line.lower()
        if low == "*tea":
            in_block = True
            continue
        if low == "*endtea":
            in_block = False
            continue
        if not in_block:
            continue
        tokens = line.split()
        if tokens[0].lower() == "state":
            index, spec = _parse_state(tokens, lineno)
            _first_use(f"state {index}", lineno, what="state")
            states[index] = spec
            continue
        if low in _SOLVER_FLAGS:
            _first_use("solver flag", lineno, what="solver selection")
            deck.solver = _SOLVER_FLAGS[low]
            continue
        if low in _RESILIENCE_FLAGS:
            _first_use(low, lineno, what="flag")
            setattr(deck, _RESILIENCE_FLAGS[low], True)
            continue
        if low in _NUMERICS_FLAGS:
            _first_use(low, lineno, what="flag")
            setattr(deck, _NUMERICS_FLAGS[low], True)
            continue
        if "=" not in line:
            raise ConfigurationError(f"line {lineno}: unrecognised entry {line!r}")
        key, val = (s.strip() for s in line.split("=", 1))
        _first_use(key.lower(), lineno)
        _apply_setting(deck, key.lower(), val, lineno)

    if states:
        ordered = [states[i] for i in sorted(states)]
        if sorted(states) != list(range(1, len(states) + 1)):
            raise ConfigurationError(
                f"state indices must be 1..N, got {sorted(states)}")
        deck.states = ordered
    return deck


def _apply_setting(deck: Deck, key: str, val: str, lineno: int) -> None:
    simple = {
        "x_cells": ("x_cells", int),
        "y_cells": ("y_cells", int),
        "xmin": ("xmin", float),
        "xmax": ("xmax", float),
        "ymin": ("ymin", float),
        "ymax": ("ymax", float),
        "initial_timestep": ("initial_timestep", float),
        "end_time": ("end_time", float),
        "tl_eps": ("tl_eps", float),
        "tl_max_iters": ("tl_max_iters", int),
        "tl_ppcg_inner_steps": ("tl_ppcg_inner_steps", int),
        "tl_ppcg_halo_depth": ("tl_ppcg_halo_depth", int),
        "tl_eigen_warmup_iters": ("tl_eigen_warmup_iters", int),
        "tl_checkpoint_interval": ("tl_checkpoint_interval", int),
        "tl_checkpoint_dir": ("tl_checkpoint_dir", str),
        "tl_abft_interval": ("tl_abft_interval", int),
        "tl_replace_interval": ("tl_replace_interval", int),
        "tl_comm_timeout": ("tl_comm_timeout", float),
        "summary_frequency": ("summary_frequency", int),
        "visit_frequency": ("visit_frequency", int),
    }
    if key in simple:
        attr, cast = simple[key]
        try:
            setattr(deck, attr, cast(val))
        except ValueError:
            raise ConfigurationError(f"line {lineno}: bad value for {key}: {val!r}")
        return
    if key == "tl_preconditioner_type":
        if val not in _PRECONDITIONERS:
            raise ConfigurationError(
                f"line {lineno}: unknown preconditioner {val!r}; "
                f"expected one of {sorted(_PRECONDITIONERS)}")
        deck.tl_preconditioner_type = _PRECONDITIONERS[val]
        return
    if key == "tl_coefficient":
        try:
            deck.tl_coefficient = Conductivity(val.lower())
        except ValueError:
            raise ConfigurationError(
                f"line {lineno}: unknown tl_coefficient {val!r}")
        return
    if key == "tl_working_dtype":
        from repro.solvers.options import WORKING_DTYPES
        if val not in WORKING_DTYPES:
            raise ConfigurationError(
                f"line {lineno}: unknown tl_working_dtype {val!r}; "
                f"expected one of {list(WORKING_DTYPES)}")
        deck.tl_working_dtype = val
        return
    if key == "tl_kernel_backend":
        from repro.solvers.options import KERNEL_BACKENDS
        if val not in KERNEL_BACKENDS:
            raise ConfigurationError(
                f"line {lineno}: unknown tl_kernel_backend {val!r}; "
                f"expected one of {list(KERNEL_BACKENDS)}")
        deck.tl_kernel_backend = val
        return
    raise ConfigurationError(f"line {lineno}: unknown setting {key!r}")


def parse_deck(path) -> Deck:
    """Parse a deck file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_deck_text(fh.read())


def deck_to_problem(deck: Deck, name: str = "deck") -> ProblemSpec:
    """Convert a deck's state list into a :class:`ProblemSpec`."""
    if not deck.states:
        raise ConfigurationError("deck defines no states")
    return ProblemSpec(regions=tuple(deck.states), name=name)


def deck_solver_options(deck: Deck):
    """The :class:`~repro.solvers.options.SolverOptions` a deck selects.

    The canonical ``tl_*`` → options mapping (the same one the
    ``tealeaf`` CLI applies before its flag overrides); re-runs the full
    options validation, so an inconsistent deck raises
    :class:`ConfigurationError` here rather than mid-solve.
    """
    from repro.solvers.options import SolverOptions
    return SolverOptions(
        solver=deck.solver,
        eps=deck.tl_eps,
        max_iters=deck.tl_max_iters,
        preconditioner=deck.tl_preconditioner_type,
        ppcg_inner_steps=deck.tl_ppcg_inner_steps,
        halo_depth=deck.tl_ppcg_halo_depth,
        eigen_warmup_iters=deck.tl_eigen_warmup_iters,
        checkpoint_interval=deck.tl_checkpoint_interval,
        checkpoint_dir=deck.tl_checkpoint_dir,
        recovery=deck.tl_enable_recovery,
        integrity=deck.tl_enable_checksums,
        abft_interval=deck.tl_abft_interval,
        dtype=deck.tl_working_dtype,
        refine=deck.tl_enable_refinement,
        replace_interval=deck.tl_replace_interval,
        true_residual=deck.tl_check_true_residual,
        kernel_backend=deck.tl_kernel_backend,
        comm_timeout=deck.tl_comm_timeout,
    )


#: The paper's crooked-pipe benchmark as deck text (mesh size is a template).
CROOKED_PIPE_DECK = """\
*tea
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
state 3 density=0.1 energy=0.1 geometry=rectangle xmin=1.0 xmax=6.0 ymin=1.0 ymax=2.0
state 4 density=0.1 energy=0.1 geometry=rectangle xmin=5.0 xmax=6.0 ymin=1.0 ymax=8.0
state 5 density=0.1 energy=0.1 geometry=rectangle xmin=5.0 xmax=10.0 ymin=7.0 ymax=8.0
x_cells={n}
y_cells={n}
xmin=0.0
xmax=10.0
ymin=0.0
ymax=10.0
initial_timestep=0.04
end_time=15.0
tl_coefficient=recip_conductivity
use_ppcg
tl_ppcg_inner_steps=10
tl_max_iters=10000
tl_eps=1e-10
*endtea
"""


def crooked_pipe_deck(n: int = 512) -> Deck:
    """The crooked-pipe benchmark deck at mesh size ``n`` x ``n``."""
    return parse_deck_text(CROOKED_PIPE_DECK.format(n=n))
