"""Problem specifications: initial density/energy regions.

TeaLeaf initialises its state from a list of regions ("states" in the input
deck): state 1 is the background, later states paint rectangles, circles or
points over it.  The paper's benchmark is the **crooked pipe** (Fig. 3): a
dense, poorly conducting material crossed by a low-density, highly conducting
pipe with two kinks, with a hot source at the pipe inlet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import Grid2D
from repro.utils.validation import check_in, check_positive, require


@dataclass(frozen=True)
class RegionSpec:
    """One "state" line of a TeaLeaf deck.

    ``geometry`` is ``"background"`` (fills everything; must be first),
    ``"rectangle"`` (``bounds = (xmin, xmax, ymin, ymax)``), ``"circle"``
    (``bounds = (cx, cy, radius)``) or ``"point"`` (``bounds = (x, y)``).
    Cells are painted when their centre lies inside the region, matching
    TeaLeaf's cell-centred initialisation.
    """

    density: float
    energy: float
    geometry: str = "background"
    bounds: tuple = ()

    def __post_init__(self):
        check_positive("density", self.density)
        check_positive("energy", self.energy)
        check_in("geometry", self.geometry,
                 ("background", "rectangle", "circle", "point"))
        need = {"background": 0, "rectangle": 4, "circle": 3, "point": 2}
        require(len(self.bounds) == need[self.geometry],
                f"{self.geometry} region needs {need[self.geometry]} bounds, "
                f"got {len(self.bounds)}")

    def mask(self, grid: Grid2D) -> np.ndarray:
        """Boolean array of cells whose centres fall inside this region."""
        X, Y = grid.cell_centers()
        if self.geometry == "background":
            return np.ones(grid.shape, dtype=bool)
        if self.geometry == "rectangle":
            xmin, xmax, ymin, ymax = self.bounds
            return (X >= xmin) & (X < xmax) & (Y >= ymin) & (Y < ymax)
        if self.geometry == "circle":
            cx, cy, r = self.bounds
            return (X - cx) ** 2 + (Y - cy) ** 2 <= r * r
        # point: the single cell containing (x, y)
        x, y = self.bounds
        j = min(int((x - grid.extent[0]) / grid.dx), grid.nx - 1)
        k = min(int((y - grid.extent[2]) / grid.dy), grid.ny - 1)
        m = np.zeros(grid.shape, dtype=bool)
        m[k, j] = True
        return m


@dataclass(frozen=True)
class ProblemSpec:
    """An ordered list of regions; later regions overwrite earlier ones."""

    regions: tuple[RegionSpec, ...]
    name: str = "problem"

    def __post_init__(self):
        require(len(self.regions) >= 1, "at least one region required")
        require(self.regions[0].geometry == "background",
                "first region must be the background state")

    def paint(self, grid: Grid2D) -> tuple[np.ndarray, np.ndarray]:
        """Rasterise to global ``(density, energy)`` arrays of grid shape."""
        density = np.empty(grid.shape)
        energy = np.empty(grid.shape)
        for region in self.regions:
            m = region.mask(grid)
            density[m] = region.density
            energy[m] = region.energy
        return density, energy


def crooked_pipe() -> ProblemSpec:
    """The paper's benchmark problem (TeaLeaf ``tea_bm_5``-style deck).

    A 10x10 box of dense material (rho = 100, kappa = 1/rho = 0.01) crossed by a
    low-density pipe (rho = 0.1, kappa = 10) running (0,1.5)->(6,1.5) up to
    (5.5,7.5) and out to (10,7.5); a hot source (energy 25) fills the first
    pipe segment.  Use with ``Conductivity.RECIP_DENSITY``.
    """
    return ProblemSpec(
        name="crooked_pipe",
        regions=(
            RegionSpec(density=100.0, energy=0.0001),
            RegionSpec(density=0.1, energy=25.0,
                       geometry="rectangle", bounds=(0.0, 1.0, 1.0, 2.0)),
            RegionSpec(density=0.1, energy=0.1,
                       geometry="rectangle", bounds=(1.0, 6.0, 1.0, 2.0)),
            RegionSpec(density=0.1, energy=0.1,
                       geometry="rectangle", bounds=(5.0, 6.0, 1.0, 8.0)),
            RegionSpec(density=0.1, energy=0.1,
                       geometry="rectangle", bounds=(5.0, 10.0, 7.0, 8.0)),
        ),
    )


#: Conductivity jumps of the numerical-stability battery (paper §VIII asks
#: how the solver family behaves "at extreme condition numbers"; these
#: decks answer it for the numerics layer).
STABILITY_JUMPS = (1e4, 1e6, 1e8, 1e10)


def crooked_pipe_jump(jump: float = 1e3) -> ProblemSpec:
    """Crooked pipe with a parameterised conductivity jump.

    The stock :func:`crooked_pipe` has a fixed pipe/background conductivity
    ratio of 1e3 (rho 100 vs 0.1 under ``RECIP_DENSITY``).  This variant
    keeps the same geometry but splits a requested ``jump`` symmetrically
    about the stock geometric mean (rho = sqrt(10)): densities
    ``sqrt(10) * sqrt(jump)`` (background) and ``sqrt(10) / sqrt(jump)``
    (pipe), so the
    face-coefficient contrast — and with it the spread of the operator
    spectrum — scales directly with ``jump``.  ``crooked_pipe_jump(1e3)``
    reproduces the benchmark densities exactly.  Jumps of 1e4-1e10
    (:data:`STABILITY_JUMPS`) drive the ill-conditioned battery behind
    :mod:`repro.harness.stability_sweep`.
    """
    check_positive("jump", jump)
    s = float(np.sqrt(jump))
    mean = float(np.sqrt(10.0))
    rho_bg, rho_pipe = mean * s, mean / s
    return ProblemSpec(
        name=f"crooked_pipe[jump={jump:g}]",
        regions=(
            RegionSpec(density=rho_bg, energy=0.0001),
            RegionSpec(density=rho_pipe, energy=25.0,
                       geometry="rectangle", bounds=(0.0, 1.0, 1.0, 2.0)),
            RegionSpec(density=rho_pipe, energy=0.1,
                       geometry="rectangle", bounds=(1.0, 6.0, 1.0, 2.0)),
            RegionSpec(density=rho_pipe, energy=0.1,
                       geometry="rectangle", bounds=(5.0, 6.0, 1.0, 8.0)),
            RegionSpec(density=rho_pipe, energy=0.1,
                       geometry="rectangle", bounds=(5.0, 10.0, 7.0, 8.0)),
        ),
    )


def stability_battery(jumps: tuple = STABILITY_JUMPS) -> tuple[ProblemSpec, ...]:
    """The ill-conditioned problem battery: one crooked pipe per jump."""
    return tuple(crooked_pipe_jump(j) for j in jumps)


def uniform_problem(density: float = 1.0, energy: float = 1.0) -> ProblemSpec:
    """Homogeneous medium — the simplest well-conditioned test problem."""
    return ProblemSpec(name="uniform",
                       regions=(RegionSpec(density=density, energy=energy),))


def hot_square(background_density: float = 1.0,
               square_density: float = 1.0,
               energy: float = 10.0,
               bounds: tuple = (4.0, 6.0, 4.0, 6.0)) -> ProblemSpec:
    """A hot square in a cold box — a quick visual diffusion demo."""
    return ProblemSpec(
        name="hot_square",
        regions=(
            RegionSpec(density=background_density, energy=0.01),
            RegionSpec(density=square_density, energy=energy,
                       geometry="rectangle", bounds=bounds),
        ),
    )
