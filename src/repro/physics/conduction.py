"""Conduction coefficients for the implicit diffusion operator.

Per the paper (§II): "A conduction coefficient is calculated that is equal to
the cell centered density, which is then averaged to each face of the cell
for use in the solution."  TeaLeaf supports two cell coefficients —
``CONDUCTIVITY`` (kappa = rho) and ``RECIP_CONDUCTIVITY`` (kappa = 1/rho, used by the
crooked-pipe benchmark so that the dense material conducts poorly) — and the
face value is the harmonic-style mean of the two adjacent cells.

The operator coefficients of Listing 1 are then ``Kx = rx * kappa_face`` with
``rx = dt/dx^2`` (and ``ry = dt/dy^2``), and faces on the physical boundary are
zeroed, which imposes insulated (zero-flux) boundaries and makes the system
matrix ``A = I + D`` strictly diagonally dominant and SPD.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.utils.validation import check_in, check_positive


class Conductivity(str, enum.Enum):
    """Cell-centred conductivity model (TeaLeaf ``tl_coefficient``)."""

    DENSITY = "conductivity"          # kappa = rho
    RECIP_DENSITY = "recip_conductivity"  # kappa = 1/rho


def cell_conductivity(density: np.ndarray,
                      model: Conductivity | str = Conductivity.RECIP_DENSITY
                      ) -> np.ndarray:
    """Cell-centred conductivity ``kappa`` from density."""
    model = Conductivity(model)
    if np.any(density <= 0):
        raise ValueError("density must be strictly positive everywhere")
    if model is Conductivity.DENSITY:
        return np.asarray(density, dtype=np.float64).copy()
    return 1.0 / np.asarray(density, dtype=np.float64)


def _face_mean(a: np.ndarray, b: np.ndarray, mean: str) -> np.ndarray:
    """Average two adjacent-cell coefficient arrays onto their shared face."""
    check_in("mean", mean, ("arithmetic", "harmonic"))
    if mean == "arithmetic":
        return 0.5 * (a + b)
    return 2.0 * a * b / (a + b)


def face_coefficients(
    kappa: np.ndarray,
    rx: float,
    ry: float,
    mean: str = "harmonic",
) -> tuple[np.ndarray, np.ndarray]:
    """Face coefficient arrays ``(Kx, Ky)`` from cell conductivity.

    Parameters
    ----------
    kappa:
        Cell conductivity, shape ``(ny, nx)``.
    rx, ry:
        ``dt/dx^2`` and ``dt/dy^2`` scalings.
    mean:
        ``"harmonic"`` (TeaLeaf's choice, exact for layered media) or
        ``"arithmetic"``.

    Returns
    -------
    Kx : ``(ny, nx+1)`` — ``Kx[k, j]`` couples cells ``(k, j-1)`` and
        ``(k, j)``; columns 0 and nx (physical boundary faces) are zero.
    Ky : ``(ny+1, nx)`` — ``Ky[k, j]`` couples cells ``(k-1, j)`` and
        ``(k, j)``; rows 0 and ny are zero.
    """
    check_positive("rx", rx)
    check_positive("ry", ry)
    kappa = np.asarray(kappa, dtype=np.float64)
    ny, nx = kappa.shape
    kx = np.zeros((ny, nx + 1))
    ky = np.zeros((ny + 1, nx))
    kx[:, 1:nx] = rx * _face_mean(kappa[:, :-1], kappa[:, 1:], mean)
    ky[1:ny, :] = ry * _face_mean(kappa[:-1, :], kappa[1:, :], mean)
    return kx, ky


def face_coefficients_3d(
    kappa: np.ndarray,
    rx: float,
    ry: float,
    rz: float,
    mean: str = "harmonic",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """3D analogue of :func:`face_coefficients` for the 7-point operator.

    Returns ``(Kx, Ky, Kz)`` with shapes ``(nz, ny, nx+1)``,
    ``(nz, ny+1, nx)`` and ``(nz+1, ny, nx)``; boundary faces are zero.
    """
    check_positive("rx", rx)
    check_positive("ry", ry)
    check_positive("rz", rz)
    kappa = np.asarray(kappa, dtype=np.float64)
    nz, ny, nx = kappa.shape
    kx = np.zeros((nz, ny, nx + 1))
    ky = np.zeros((nz, ny + 1, nx))
    kz = np.zeros((nz + 1, ny, nx))
    kx[:, :, 1:nx] = rx * _face_mean(kappa[:, :, :-1], kappa[:, :, 1:], mean)
    ky[:, 1:ny, :] = ry * _face_mean(kappa[:, :-1, :], kappa[:, 1:, :], mean)
    kz[1:nz, :, :] = rz * _face_mean(kappa[:-1, :, :], kappa[1:, :, :], mean)
    return kx, ky, kz
