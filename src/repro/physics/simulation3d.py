"""3D time-stepping driver (serial).

Completes the mini-app's "two and three dimensions via five and seven
point finite difference stencils" (§II).  The paper evaluates 2D only
("the 3D results are similar"), so the 3D driver runs on the global grid
with the serial 7-point solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import Grid3D
from repro.physics.conduction import (
    Conductivity,
    cell_conductivity,
    face_coefficients_3d,
)
from repro.solvers.dim3 import StencilOperator3D, cg_solve_3d
from repro.utils.errors import ConvergenceError
from repro.utils.validation import check_positive, require


@dataclass(frozen=True)
class BoxRegion3D:
    """A density/energy box painted over the background."""

    density: float
    energy: float
    bounds: tuple | None = None  # (xmin, xmax, ymin, ymax, zmin, zmax)

    def mask(self, grid: Grid3D) -> np.ndarray:
        if self.bounds is None:
            return np.ones(grid.shape, dtype=bool)
        X, Y, Z = grid.cell_centers()
        xmin, xmax, ymin, ymax, zmin, zmax = self.bounds
        return ((X >= xmin) & (X < xmax) & (Y >= ymin) & (Y < ymax)
                & (Z >= zmin) & (Z < zmax))


def crooked_duct_3d() -> tuple[BoxRegion3D, ...]:
    """A 3D analogue of the crooked pipe: a kinked low-density duct."""
    return (
        BoxRegion3D(density=100.0, energy=0.0001),
        BoxRegion3D(density=0.1, energy=25.0,
                    bounds=(0.0, 1.0, 1.0, 2.0, 1.0, 2.0)),
        BoxRegion3D(density=0.1, energy=0.1,
                    bounds=(1.0, 6.0, 1.0, 2.0, 1.0, 2.0)),
        BoxRegion3D(density=0.1, energy=0.1,
                    bounds=(5.0, 6.0, 1.0, 8.0, 1.0, 2.0)),
        BoxRegion3D(density=0.1, energy=0.1,
                    bounds=(5.0, 10.0, 7.0, 8.0, 1.0, 2.0)),
    )


@dataclass
class Simulation3D:
    """Serial 3D implicit heat-conduction stepping."""

    grid: Grid3D
    regions: tuple[BoxRegion3D, ...]
    dt: float = 0.04
    eps: float = 1e-10
    max_iters: int = 50_000
    conductivity: Conductivity | str = Conductivity.RECIP_DENSITY
    warm_start: bool = True
    time: float = field(default=0.0, init=False)
    step_index: int = field(default=0, init=False)

    def __post_init__(self):
        check_positive("dt", self.dt)
        require(len(self.regions) >= 1, "need at least a background region")
        require(self.regions[0].bounds is None,
                "first region must be the background (bounds=None)")
        self.density = np.empty(self.grid.shape)
        energy = np.empty(self.grid.shape)
        for region in self.regions:
            m = region.mask(self.grid)
            self.density[m] = region.density
            energy[m] = region.energy
        self.u = self.density * energy
        kappa = cell_conductivity(self.density, self.conductivity)
        rx = self.dt / self.grid.dx ** 2
        ry = self.dt / self.grid.dy ** 2
        rz = self.dt / self.grid.dz ** 2
        kx, ky, kz = face_coefficients_3d(kappa, rx, ry, rz)
        self.op = StencilOperator3D(kx=kx, ky=ky, kz=kz)

    def step(self) -> dict:
        """One implicit step; returns solve statistics."""
        x0 = self.u if self.warm_start else None
        x, iterations, rel = cg_solve_3d(self.op, self.u, x0=x0,
                                         eps=self.eps,
                                         max_iters=self.max_iters)
        if rel > self.eps:
            raise ConvergenceError(
                f"3D step {self.step_index}: residual {rel:.3e} > {self.eps}")
        self.u = x
        self.step_index += 1
        self.time += self.dt
        return {"step": self.step_index, "time": self.time,
                "iterations": iterations,
                "mean_temperature": float(self.u.mean())}

    def run(self, n_steps: int) -> list[dict]:
        check_positive("n_steps", n_steps)
        return [self.step() for _ in range(n_steps)]

    def mean_temperature(self) -> float:
        return float(self.u.mean())


def run_simulation_3d_distributed(
    grid: Grid3D,
    regions: tuple[BoxRegion3D, ...],
    *,
    dt: float = 0.04,
    n_steps: int = 1,
    nranks: int = 1,
    eps: float = 1e-10,
    solver: str = "cg",
    inner_steps: int = 10,
    halo_depth: int = 1,
    conductivity: Conductivity | str = Conductivity.RECIP_DENSITY,
) -> dict:
    """Distributed 3D mini-app run over the in-process SPMD world.

    Uses the dimension-agnostic solvers on
    :class:`~repro.solvers.operator3d.DistributedOperator3D`; returns the
    gathered global temperature plus per-step iteration counts.
    """
    from repro.comm.spmd import launch_spmd
    from repro.mesh.decomposition3d import decompose3d
    from repro.mesh.field3d import Field3D
    from repro.mesh.halo3d import HaloExchanger3D
    from repro.physics.state3d import build_coefficient_fields_3d, build_fields_3d
    from repro.solvers.cg import cg_solve
    from repro.solvers.operator3d import DistributedOperator3D
    from repro.solvers.ppcg import ppcg_solve

    check_positive("dt", dt)
    require(solver in ("cg", "ppcg"),
            f"3D distributed driver supports cg|ppcg, got {solver!r}")
    density_g = np.empty(grid.shape)
    energy_g = np.empty(grid.shape)
    for region in regions:
        m = region.mask(grid)
        density_g[m] = region.density
        energy_g[m] = region.energy

    halo = max(1, halo_depth)
    rx = dt / grid.dx ** 2
    ry = dt / grid.dy ** 2
    rz = dt / grid.dz ** 2

    def rank_main(comm):
        tile = decompose3d(grid, comm.size)[comm.rank]
        fields = build_fields_3d(tile, halo, density_g, energy_g)
        exchanger = HaloExchanger3D(comm)
        kx, ky, kz = build_coefficient_fields_3d(
            fields["density"], rx, ry, rz, exchanger, model=conductivity)
        op = DistributedOperator3D(kx=kx, ky=ky, kz=kz, comm=comm,
                                   exchanger=exchanger)
        u = fields["u"]
        iters = []
        for _ in range(n_steps):
            b = u.copy()
            if solver == "ppcg":
                result = ppcg_solve(op, b, u, eps=eps,
                                    inner_steps=inner_steps,
                                    halo_depth=halo_depth)
            else:
                result = cg_solve(op, b, u, eps=eps)
            if not result.converged:
                raise ConvergenceError(f"3D step failed: {result.summary()}")
            u = result.x
            iters.append(result.iterations)
        pieces = comm.gather((tile, u.interior.copy()), root=0)
        temp = None
        if pieces is not None:
            temp = np.zeros(grid.shape)
            for t, part in pieces:
                temp[t.global_slices] = part
        return {"iterations": iters, "temperature": temp}

    results = launch_spmd(rank_main, nranks)
    return results[0]
