"""TeaLeaf physics: heat-conduction state, coefficients, problems, decks.

TeaLeaf advances the linear heat-conduction equation with an implicit time
step: each step builds face conduction coefficients from the (static) density
field and solves the SPD system ``A u_new = u_old`` with one of the iterative
solvers in :mod:`repro.solvers`.
"""

from repro.physics.conduction import (
    Conductivity,
    cell_conductivity,
    face_coefficients,
    face_coefficients_3d,
)
from repro.physics.problems import (
    RegionSpec,
    ProblemSpec,
    STABILITY_JUMPS,
    crooked_pipe,
    crooked_pipe_jump,
    stability_battery,
    uniform_problem,
    hot_square,
)
from repro.physics.state import build_fields, global_initial_state
from repro.physics.deck import (
    Deck,
    deck_solver_options,
    deck_to_problem,
    parse_deck,
    parse_deck_text,
)
from repro.physics.simulation import Simulation, SimulationReport, run_simulation
from repro.physics.simulation3d import (
    BoxRegion3D,
    Simulation3D,
    crooked_duct_3d,
    run_simulation_3d_distributed,
)
from repro.physics.state3d import build_coefficient_fields_3d, build_fields_3d
from repro.physics.summary import FieldSummary, field_summary

__all__ = [
    "Conductivity",
    "cell_conductivity",
    "face_coefficients",
    "face_coefficients_3d",
    "RegionSpec",
    "ProblemSpec",
    "STABILITY_JUMPS",
    "crooked_pipe",
    "crooked_pipe_jump",
    "stability_battery",
    "uniform_problem",
    "hot_square",
    "build_fields",
    "global_initial_state",
    "Deck",
    "parse_deck",
    "parse_deck_text",
    "deck_to_problem",
    "deck_solver_options",
    "Simulation",
    "SimulationReport",
    "run_simulation",
    "BoxRegion3D",
    "Simulation3D",
    "crooked_duct_3d",
    "run_simulation_3d_distributed",
    "build_coefficient_fields_3d",
    "build_fields_3d",
    "FieldSummary",
    "field_summary",
]
