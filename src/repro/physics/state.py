"""Rank-local state construction for the TeaLeaf mini-app.

Temperatures live at cell centres; the solved variable is
``u = density * energy`` (TeaLeaf's convention).  Density is static, so the
face coefficient fields are rebuilt from it once per time step (they change
only through ``rx = dt/dx^2`` when the step size changes).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.decomposition import Tile
from repro.mesh.field import Field
from repro.mesh.grid import Grid2D
from repro.mesh.halo import HaloExchanger, reflect_boundaries
from repro.physics.conduction import Conductivity, cell_conductivity
from repro.physics.problems import ProblemSpec


def global_initial_state(grid: Grid2D, problem: ProblemSpec
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rasterise a problem to global ``(density, energy, u)`` arrays."""
    density, energy = problem.paint(grid)
    return density, energy, density * energy


def build_fields(
    tile: Tile,
    halo: int,
    density_global: np.ndarray,
    energy_global: np.ndarray,
) -> dict[str, Field]:
    """Slice this rank's fields out of the global initial state.

    Returns ``{"density", "energy", "u"}`` where ``u`` is the temperature
    (solved variable).
    """
    density = Field.from_global(tile, halo, density_global)
    energy = Field.from_global(tile, halo, energy_global)
    u = Field(tile, halo)
    u.interior[...] = density.interior * energy.interior
    return {"density": density, "energy": energy, "u": u}


def build_coefficient_fields(
    density: Field,
    rx: float,
    ry: float,
    exchanger: HaloExchanger,
    model: Conductivity | str = Conductivity.RECIP_DENSITY,
    mean: str = "harmonic",
) -> tuple[Field, Field]:
    """Build padded face-coefficient fields ``(Kx, Ky)`` on this rank.

    ``Kx.data[k, j]`` couples padded cells ``(k, j-1)`` and ``(k, j)``;
    likewise ``Ky`` in y.  Coefficients are valid over the whole padded
    array (after a full-depth density exchange plus boundary reflection),
    which is what the matrix powers kernel's extended loop bounds require.
    Faces lying on the physical boundary are zeroed (insulated boundary).
    """
    tile, h = density.tile, density.halo
    # Fresh neighbour data first, then mirror across physical boundaries so
    # the face means are well-defined on every padded cell we may touch.
    exchanger.exchange(density, depth=h)
    reflect_boundaries(density)
    pad = density.data
    # Outer halo corners beyond two physical boundaries are never referenced
    # by any extended-bounds kernel; give them a benign positive value so the
    # conductivity transform (1/rho) stays finite.
    pad[pad <= 0] = 1.0
    kappa = cell_conductivity(pad, model)

    kx = Field(tile, h)
    ky = Field(tile, h)
    if mean == "arithmetic":
        fx = 0.5 * (kappa[:, :-1] + kappa[:, 1:])
        fy = 0.5 * (kappa[:-1, :] + kappa[1:, :])
    elif mean == "harmonic":
        fx = 2.0 * kappa[:, :-1] * kappa[:, 1:] / (kappa[:, :-1] + kappa[:, 1:])
        fy = 2.0 * kappa[:-1, :] * kappa[1:, :] / (kappa[:-1, :] + kappa[1:, :])
    else:
        raise ValueError(f"unknown face mean {mean!r}")
    kx.data[:, 1:] = rx * fx
    ky.data[1:, :] = ry * fy

    # Insulated physical boundaries: zero the boundary-face coefficients.
    if tile.left is None:
        kx.data[:, h] = 0.0
    if tile.right is None:
        kx.data[:, h + tile.nx] = 0.0
    if tile.down is None:
        ky.data[h, :] = 0.0
    if tile.up is None:
        ky.data[h + tile.ny, :] = 0.0
    return kx, ky
