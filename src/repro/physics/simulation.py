"""Time-stepping driver: the TeaLeaf mini-app main loop.

Each step solves ``A u_new = u_old`` where ``A = I + dt * L`` is the implicit
(backward-Euler) discretisation of the heat equation — implicit because "of
the severe time step limitations imposed by the stability criteria of an
explicit solution for a parabolic partial differential equation" (§II).

:class:`Simulation` is the rank-local (SPMD) view; :func:`run_simulation`
launches one per rank over the in-process world and gathers the results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.comm.base import Communicator
from repro.comm.spmd import launch_spmd
from repro.mesh.decomposition import Tile, decompose
from repro.mesh.field import Field
from repro.mesh.grid import Grid2D
from repro.mesh.halo import HaloExchanger
from repro.physics.conduction import Conductivity
from repro.physics.problems import ProblemSpec, RegionSpec
from repro.physics.state import build_coefficient_fields, build_fields, global_initial_state
from repro.solvers.driver import solve_linear
from repro.solvers.operator import StencilOperator2D
from repro.solvers.options import SolverOptions
from repro.utils.errors import (CheckpointError, CommunicationError,
                                ConvergenceError)
from repro.utils.events import EventLog, recovery_scope
from repro.utils.validation import check_positive


@dataclass
class StepStats:
    """Per-step solver statistics (the fields the harness aggregates)."""

    step: int
    time: float
    iterations: int
    inner_iterations: int
    warmup_iterations: int
    converged: bool
    residual_norm: float
    mean_temperature: float
    #: attached when run(summary_frequency=...) hits this step
    summary: object = None
    #: true residual ``||b - A u_new||`` — None unless the deck/options
    #: requested it (``SolverOptions.true_residual`` or refinement)
    true_residual_norm: float | None = None


@dataclass
class SimulationReport:
    """Gathered outcome of a full run."""

    grid: Grid2D
    dt: float
    steps: list[StepStats]
    temperature: np.ndarray | None  # global (ny, nx), on the caller
    events: EventLog
    #: per-rank tracers when run_simulation was given a tracer_factory
    tracers: list = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def final_mean_temperature(self) -> float:
        return self.steps[-1].mean_temperature if self.steps else float("nan")

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations + s.inner_iterations + s.warmup_iterations
                   for s in self.steps)


class Simulation:
    """One rank's share of the mini-app: fields, operator, stepping."""

    def __init__(
        self,
        comm: Communicator,
        grid: Grid2D,
        problem: ProblemSpec,
        options: SolverOptions | None = None,
        dt: float = 0.04,
        conductivity: Conductivity | str = Conductivity.RECIP_DENSITY,
        face_mean: str = "harmonic",
        warm_start: bool = True,
        tracer=None,
    ):
        check_positive("dt", dt)
        self.events = EventLog()
        if tracer is None:
            # Deferred import: the physics driver stays importable without
            # loading the observability package.
            from repro.observe.trace import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer
        # Wrap the communicator so reductions/messages land in the event log
        # alongside the mesh-level halo-exchange events.
        from repro.comm.instrument import InstrumentedComm
        comm = InstrumentedComm(comm, self.events, tracer=tracer)
        self.comm = comm
        self.grid = grid
        self.options = options if options is not None else SolverOptions()
        self.dt = dt
        self.warm_start = warm_start
        self.time = 0.0
        self.step_index = 0

        self.tile: Tile = decompose(grid, comm.size)[comm.rank]
        halo = self.options.required_field_halo
        self.exchanger = HaloExchanger(comm, events=self.events,
                                       tracer=tracer)

        density_g, energy_g, _ = global_initial_state(grid, problem)
        self.fields = build_fields(self.tile, halo, density_g, energy_g)

        rx = dt / grid.dx ** 2
        ry = dt / grid.dy ** 2
        kx, ky = build_coefficient_fields(
            self.fields["density"], rx, ry, self.exchanger,
            model=conductivity, mean=face_mean)
        self.op = StencilOperator2D(kx=kx, ky=ky, comm=comm,
                                    exchanger=self.exchanger,
                                    events=self.events,
                                    tracer=tracer)

    @property
    def u(self) -> Field:
        """The temperature field (the solved variable)."""
        return self.fields["u"]

    def mean_temperature(self) -> float:
        """Globally averaged temperature (one allreduce)."""
        total = self.comm.allreduce(self.u.local_sum())
        return float(total) / self.grid.n_cells

    def summary(self):
        """TeaLeaf-style field summary (volume/mass/energy/temperature)."""
        from repro.physics.summary import field_summary
        return field_summary(self.grid, self.fields["density"], self.u,
                             self.comm)

    def checkpoint(self) -> dict:
        """Snapshot the evolving state (temperature, clock, step index).

        Only ``u`` evolves between steps — density and the operator
        coefficients are fixed after construction — so a checkpoint is one
        array copy plus two scalars.  Restoring with :meth:`restore`
        rewinds the simulation to exactly this point; a re-run from there
        is bit-identical in a fault-free world.
        """
        return {
            "u": np.array(self.u.data, copy=True),
            "time": self.time,
            "step_index": self.step_index,
        }

    def restore(self, snapshot: dict) -> None:
        """Rewind to a :meth:`checkpoint` (in place, no allocation)."""
        self.u.data[...] = snapshot["u"]
        self.time = snapshot["time"]
        self.step_index = snapshot["step_index"]

    def save_checkpoint(self, root, config: dict | None = None):
        """Commit a durable on-disk checkpoint (SPMD-collective).

        Each rank writes its temperature interior into a per-rank shard
        under ``root/step-NNNNNN`` with the atomic commit protocol of
        :func:`~repro.resilience.checkpoint.commit_checkpoint`; a crash at
        any instant leaves the previous checkpoint intact.  The interior
        suffices for a bit-identical restart: every halo cell any kernel
        reads is freshly exchanged before the read.  Returns the committed
        directory.

        The commit's collectives (barrier/gather) run under the recovery
        scope so they land in
        :data:`~repro.utils.events.RECOVERY_KIND`, keeping per-step comm
        counts contract-clean.
        """
        from repro.resilience.checkpoint import commit_checkpoint
        with self.tracer.span("checkpoint", "simulation"), \
                recovery_scope(self.events):
            return commit_checkpoint(
                Path(root), self.step_index, self.comm,
                arrays={"u": np.array(self.u.interior, copy=True)},
                scalars={"time": self.time, "step_index": self.step_index},
                config=config)

    def restore_from_checkpoint(self, step_dir) -> int:
        """Restore state from a committed checkpoint directory.

        Validates the manifest's rank count and this rank's shard CRCs,
        then reinstates the temperature interior, clock and step index.
        Returns the restored step index.
        """
        from repro.resilience.checkpoint import load_rank_checkpoint
        with self.tracer.span("recover", "simulation"), \
                recovery_scope(self.events):
            arrays, scalars, _manifest = load_rank_checkpoint(
                step_dir, self.comm.rank, self.comm.size)
            u = arrays.get("u")
            if u is None or u.shape != self.u.interior.shape:
                raise CheckpointError(
                    f"rank {self.comm.rank}: checkpoint {step_dir} holds "
                    f"temperature {None if u is None else u.shape}, tile "
                    f"needs {self.u.interior.shape}")
            self.u.interior = u
            self.time = float(scalars["time"])
            self.step_index = int(scalars["step_index"])
        return self.step_index

    def step(self) -> StepStats:
        """Advance one implicit step: solve ``A u_new = u_old``."""
        with self.tracer.span("step", self.step_index):
            b = self.u.copy()
            x0 = self.u if self.warm_start else None
            result = solve_linear(self.op, b, x0, options=self.options)
            if not result.converged:
                raise ConvergenceError(
                    f"step {self.step_index}: {result.summary()}",
                    result=result)
            self.fields["u"] = result.x
            self.step_index += 1
            self.time += self.dt
        return StepStats(
            step=self.step_index,
            time=self.time,
            iterations=result.iterations,
            inner_iterations=result.inner_iterations,
            warmup_iterations=result.warmup_iterations,
            converged=result.converged,
            residual_norm=result.residual_norm,
            mean_temperature=self.mean_temperature(),
            true_residual_norm=result.true_residual_norm,
        )

    def run(self, n_steps: int,
            summary_frequency: int = 0,
            visit_frequency: int = 0,
            output_dir=None,
            checkpoint_interval: int = 0,
            max_step_retries: int = 0,
            checkpoint_dir=None,
            checkpoint_config: dict | None = None) -> list[StepStats]:
        """Advance ``n_steps``, optionally emitting TeaLeaf-style output.

        ``summary_frequency``: every k steps, attach a
        :class:`~repro.physics.summary.FieldSummary` to the step record
        (``stats.summary``).  ``visit_frequency``: every k steps, rank 0
        writes a legacy-VTK dump of the gathered temperature/density into
        ``output_dir`` (named ``tea.<step>.vtk`` as TeaLeaf does).

        Resilience (both default off, preserving historical behaviour):
        with ``checkpoint_interval = k`` the state is checkpointed every
        ``k`` steps, and with ``max_step_retries = m`` a step that fails
        with :class:`ConvergenceError` or :class:`CommunicationError` is
        retried up to ``m`` times from the last checkpoint instead of
        aborting the run.  Convergence failures are globally coherent
        (the residual check is an allreduce), so every SPMD rank rolls
        back together; communication failures are only guaranteed
        coherent when the fault affects collectives symmetrically (as the
        resilient stack's collective faults do) or in serial runs.

        With ``checkpoint_dir`` set (and ``checkpoint_interval = k``), a
        *durable* checkpoint is additionally committed to disk after every
        ``k``-th completed step (see :meth:`save_checkpoint`) — each
        committed ``step-NNNNNN`` directory records "step N finished", so
        a killed run restarts from the last completed cadence boundary.
        ``checkpoint_config`` is stored in the manifest for
        :func:`restart_simulation` to rebuild the run from.
        """
        check_positive("n_steps", n_steps)
        check_positive("checkpoint_interval", checkpoint_interval,
                       allow_zero=True)
        check_positive("max_step_retries", max_step_retries, allow_zero=True)
        stats: list[StepStats] = []
        snapshot = None
        n_kept = 0
        retries_left = max_step_retries
        while len(stats) < n_steps:
            if checkpoint_interval \
                    and self.step_index % checkpoint_interval == 0:
                snapshot = self.checkpoint()
                n_kept = len(stats)
            try:
                s = self.step()
            except (ConvergenceError, CommunicationError):
                if snapshot is None or retries_left <= 0:
                    raise
                retries_left -= 1
                self.restore(snapshot)
                del stats[n_kept:]
                continue
            if checkpoint_dir is not None and checkpoint_interval \
                    and self.step_index % checkpoint_interval == 0:
                self.save_checkpoint(checkpoint_dir, checkpoint_config)
            if summary_frequency and self.step_index % summary_frequency == 0:
                s.summary = self.summary()
            if visit_frequency and self.step_index % visit_frequency == 0:
                self._visit_dump(output_dir)
            stats.append(s)
        return stats

    def _visit_dump(self, output_dir) -> None:
        from pathlib import Path

        temperature = self.gather_temperature(root=0)
        density = self.comm.gather(
            (self.tile, self.fields["density"].interior.copy()), root=0)
        if temperature is None:
            return  # not rank 0
        import numpy as _np

        from repro.io.vtk import write_vtk
        rho = _np.zeros(self.grid.shape)
        for tile, part in density:
            rho[tile.global_slices] = part
        out = Path(output_dir) if output_dir is not None else Path(".")
        write_vtk(out / f"tea.{self.step_index}.vtk", self.grid,
                  {"temperature": temperature, "density": rho})

    def gather_temperature(self, root: int = 0) -> np.ndarray | None:
        """Assemble the global temperature array on ``root``."""
        pieces = self.comm.gather((self.tile, self.u.interior.copy()), root)
        if pieces is None:
            return None
        out = np.zeros(self.grid.shape)
        for tile, interior in pieces:
            out[tile.global_slices] = interior
        return out


def checkpoint_config(grid: Grid2D,
                      problem: ProblemSpec,
                      options: SolverOptions,
                      *,
                      dt: float,
                      n_steps: int,
                      nranks: int,
                      conductivity: Conductivity | str,
                      face_mean: str,
                      warm_start: bool,
                      checkpoint_interval: int) -> dict:
    """JSON-ready run description stored in every checkpoint manifest.

    Everything :func:`restart_simulation` needs to rebuild the run without
    the original deck: grid geometry, problem regions, solver options and
    the stepping parameters.  ``n_steps`` is the run's *total* step count,
    so a restart knows how many steps remain.
    """
    cond = conductivity.value if isinstance(conductivity, Conductivity) \
        else str(conductivity)
    opts = {k: (list(v) if isinstance(v, tuple) else v)
            for k, v in asdict(options).items()}
    return {
        "grid": {"nx": grid.nx, "ny": grid.ny, "extent": list(grid.extent)},
        "problem": {
            "name": problem.name,
            "regions": [
                {"density": r.density, "energy": r.energy,
                 "geometry": r.geometry, "bounds": list(r.bounds)}
                for r in problem.regions
            ],
        },
        "options": opts,
        "dt": dt,
        "n_steps": n_steps,
        "nranks": nranks,
        "conductivity": cond,
        "face_mean": face_mean,
        "warm_start": warm_start,
        "checkpoint_interval": checkpoint_interval,
    }


def _config_from_manifest(config: dict):
    """Invert :func:`checkpoint_config` → (grid, problem, options, kwargs)."""
    g = config["grid"]
    grid = Grid2D(nx=g["nx"], ny=g["ny"], extent=tuple(g["extent"]))
    problem = ProblemSpec(
        regions=tuple(
            RegionSpec(density=r["density"], energy=r["energy"],
                       geometry=r["geometry"], bounds=tuple(r["bounds"]))
            for r in config["problem"]["regions"]),
        name=config["problem"]["name"])
    raw = dict(config["options"])
    for key in ("eigen_safety", "deflation_blocks"):
        if key in raw and isinstance(raw[key], list):
            raw[key] = tuple(raw[key])
    options = SolverOptions(**raw)
    return grid, problem, options


def run_simulation(
    grid: Grid2D,
    problem: ProblemSpec,
    options: SolverOptions | None = None,
    *,
    dt: float = 0.04,
    n_steps: int = 1,
    nranks: int = 1,
    conductivity: Conductivity | str = Conductivity.RECIP_DENSITY,
    face_mean: str = "harmonic",
    warm_start: bool = True,
    gather_temperature: bool = True,
    checkpoint_interval: int = 0,
    max_step_retries: int = 0,
    checkpoint_dir=None,
    restore_from=None,
    total_steps: int | None = None,
    tracer_factory=None,
) -> SimulationReport:
    """Run the mini-app over an ``nranks``-rank in-process world.

    Returns the rank-0 view: per-step statistics, merged event log of rank 0
    (representative — the perfmodel scales by topology), and the gathered
    global temperature field.  ``checkpoint_interval``/``max_step_retries``
    enable step-level checkpoint/retry (see :meth:`Simulation.run`).

    Durable checkpoint/restart: ``checkpoint_dir`` commits an atomic
    on-disk checkpoint every ``checkpoint_interval`` completed steps
    (defaulting to the options' ``checkpoint_dir``/``checkpoint_interval``
    knobs when those are set); ``restore_from`` restores every rank from a
    committed ``step-*`` directory before stepping, so the run continues
    bit-identically from that checkpoint.  ``total_steps`` (default
    ``n_steps``) is what the manifest records as the run's full length —
    a restart passes the original total so further restarts stay possible.

    ``tracer_factory``: optional ``rank -> Tracer`` callable; each rank's
    :class:`Simulation` is instrumented with its tracer and the report's
    ``tracers`` list carries them back (index = rank) for export.
    """
    opts = options if options is not None else SolverOptions()
    if checkpoint_dir is None and opts.checkpoint_dir \
            and opts.checkpoint_interval > 0:
        checkpoint_dir = opts.checkpoint_dir
    if checkpoint_dir is not None and checkpoint_interval <= 0:
        checkpoint_interval = opts.checkpoint_interval or 1
    config = None
    if checkpoint_dir is not None:
        config = checkpoint_config(
            grid, problem, opts, dt=dt,
            n_steps=total_steps if total_steps is not None else n_steps,
            nranks=nranks, conductivity=conductivity, face_mean=face_mean,
            warm_start=warm_start, checkpoint_interval=checkpoint_interval)

    def rank_main(comm):
        tracer = tracer_factory(comm.rank) if tracer_factory is not None \
            else None
        sim = Simulation(comm, grid, problem, opts, dt=dt,
                         conductivity=conductivity, face_mean=face_mean,
                         warm_start=warm_start, tracer=tracer)
        if restore_from is not None:
            sim.restore_from_checkpoint(restore_from)
        steps = sim.run(n_steps, checkpoint_interval=checkpoint_interval,
                        max_step_retries=max_step_retries,
                        checkpoint_dir=checkpoint_dir,
                        checkpoint_config=config)
        temp = sim.gather_temperature(root=0) if gather_temperature else None
        return steps, temp, sim.events, sim.tracer

    results = launch_spmd(
        rank_main, nranks,
        recv_timeout=opts.comm_timeout if opts.comm_timeout > 0 else None)
    steps0, temp0, events0, _ = results[0]
    tracers = [r[3] for r in results] if tracer_factory is not None else []
    return SimulationReport(grid=grid, dt=dt, steps=steps0,
                            temperature=temp0, events=events0,
                            tracers=tracers)


def restart_simulation(root,
                       *,
                       extra_steps: int | None = None,
                       nranks: int | None = None,
                       gather_temperature: bool = True,
                       tracer_factory=None) -> SimulationReport:
    """Resume a checkpointed run from the newest committed checkpoint.

    Rebuilds the grid, problem and solver options from the manifest's
    stored config (no deck needed), restores every rank from its shard,
    and advances the remaining ``n_steps - step`` steps — bit-identically
    to the uninterrupted run.  ``extra_steps`` overrides the remaining
    count; ``nranks`` must match the checkpoint's decomposition when
    given.  Raises :class:`CheckpointError` when no committed checkpoint
    exists or the run already finished.
    """
    from repro.resilience.checkpoint import latest_checkpoint, read_manifest
    step_dir = latest_checkpoint(root)
    if step_dir is None:
        raise CheckpointError(f"no committed checkpoint under {root}")
    manifest = read_manifest(step_dir)
    config = manifest.get("config") or {}
    if "grid" not in config:
        raise CheckpointError(
            f"checkpoint {step_dir} carries no run config; it was not "
            "written by run_simulation")
    grid, problem, options = _config_from_manifest(config)
    done = int(manifest["step"])
    total = int(config["n_steps"])
    remaining = extra_steps if extra_steps is not None else total - done
    if remaining < 1:
        raise CheckpointError(
            f"checkpoint {step_dir} is at step {done} of {total}: nothing "
            "left to run (pass extra_steps to continue past the end)")
    world = nranks if nranks is not None else int(manifest["nranks"])
    return run_simulation(
        grid, problem, options,
        dt=float(config["dt"]),
        n_steps=remaining,
        nranks=world,
        conductivity=config["conductivity"],
        face_mean=config["face_mean"],
        warm_start=bool(config["warm_start"]),
        gather_temperature=gather_temperature,
        checkpoint_interval=int(config["checkpoint_interval"]),
        checkpoint_dir=Path(root),
        restore_from=step_dir,
        total_steps=total,
        tracer_factory=tracer_factory,
    )
