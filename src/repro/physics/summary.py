"""Field summaries (TeaLeaf's ``field_summary`` kernel).

TeaLeaf periodically prints conservation diagnostics: total volume, mass,
internal energy and temperature.  With insulated boundaries the implicit
step conserves internal energy exactly (up to solver tolerance), which the
test-suite checks across decompositions and solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.base import Communicator
from repro.mesh.field import Field
from repro.mesh.grid import Grid2D


@dataclass(frozen=True)
class FieldSummary:
    """Globally reduced state diagnostics."""

    volume: float
    mass: float
    internal_energy: float
    mean_temperature: float
    max_temperature: float
    min_temperature: float

    def __str__(self) -> str:
        return (f"vol={self.volume:.6g} mass={self.mass:.6g} "
                f"ie={self.internal_energy:.6g} "
                f"T(mean/min/max)={self.mean_temperature:.6g}/"
                f"{self.min_temperature:.6g}/{self.max_temperature:.6g}")


def field_summary(grid: Grid2D, density: Field, u: Field,
                  comm: Communicator) -> FieldSummary:
    """Compute the global summary (two allreduces: sums + extrema).

    ``u`` is the temperature field (``density * energy``); internal energy
    is ``sum(u) * cell_volume`` in TeaLeaf's normalisation.
    """
    cell_volume = grid.dx * grid.dy
    rho = density.interior
    temp = u.interior
    local_sums = np.array([
        rho.size * cell_volume,          # volume
        rho.sum() * cell_volume,         # mass
        temp.sum() * cell_volume,        # internal energy
        temp.sum(),                      # for the mean temperature
    ])
    sums = comm.allreduce(local_sums)
    local_ext = np.array([temp.max(), -temp.min()])
    ext = comm.allreduce(local_ext, op="max")
    return FieldSummary(
        volume=float(sums[0]),
        mass=float(sums[1]),
        internal_energy=float(sums[2]),
        mean_temperature=float(sums[3]) / grid.n_cells,
        max_temperature=float(ext[0]),
        min_temperature=float(-ext[1]),
    )
