"""Lightweight wall-clock timers for the harness and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Timer:
    """Accumulating stopwatch on a pluggable clock.

    ``clock`` is any zero-argument callable returning monotonic seconds
    — :func:`time.perf_counter` by default, or a
    :class:`~repro.resilience.retry.VirtualClock` so harness timings and
    :class:`~repro.observe.trace.Tracer` spans can share one
    deterministic clock in tests.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)
    """

    elapsed: float = 0.0
    clock: Callable[[], float] = time.perf_counter
    _start: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = self.clock()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer not running")
        self.elapsed += self.clock() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
