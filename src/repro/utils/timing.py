"""Lightweight wall-clock timers for the harness and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating stopwatch.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
