"""Shared utilities: error types, event accounting, timing, validation."""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    DecompositionError,
    CommunicationError,
    TransientCommError,
    stall_error,
)
from repro.utils.events import EventLog
from repro.utils.timing import Timer
from repro.utils.validation import (
    require,
    check_positive,
    check_in,
    check_finite_field,
    check_type,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "DecompositionError",
    "CommunicationError",
    "TransientCommError",
    "stall_error",
    "EventLog",
    "Timer",
    "require",
    "check_positive",
    "check_in",
    "check_finite_field",
    "check_type",
]
