"""Shared utilities: error types, event accounting, timing, validation."""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    DecompositionError,
    CommunicationError,
)
from repro.utils.events import EventLog
from repro.utils.timing import Timer
from repro.utils.validation import (
    require,
    check_positive,
    check_in,
    check_type,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "DecompositionError",
    "CommunicationError",
    "EventLog",
    "Timer",
    "require",
    "check_positive",
    "check_in",
    "check_type",
]
