"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration mistakes from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied configuration (options, decks, parameters)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the requested tolerance.

    The partially converged result is attached so callers can inspect it.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class DecompositionError(ReproError, ValueError):
    """A domain decomposition request cannot be satisfied."""


class CommunicationError(ReproError, RuntimeError):
    """Misuse of, or failure inside, the SPMD communication layer."""


class TransientCommError(CommunicationError):
    """A communication failure expected to succeed when re-issued.

    Raised by the fault-injection layer (:mod:`repro.resilience.faults`) for
    transient link errors and crash windows;
    :class:`~repro.resilience.retry.RetryingComm` retries exactly this
    class — plain :class:`CommunicationError` (misuse, timeouts on dropped
    messages) fails fast because re-issuing cannot help.
    """


class ChecksumError(TransientCommError):
    """A checksummed message envelope failed verification.

    Raised by :class:`~repro.resilience.integrity.ChecksumComm` when every
    redundant copy of a payload arrives corrupted (or a duplicate-lane
    reduction disagrees with itself).  Derives from
    :class:`TransientCommError` so the retry layer treats detected silent
    corruption exactly like a flaky wire: re-issue the operation.
    """


class SanitizerError(CommunicationError):
    """The SPMD sanitizer detected a correctness violation.

    Raised by :class:`~repro.comm.sanitize.SanitizerComm` when ranks issue
    divergent collectives, a point-to-point channel shows a write-epoch
    race or crossed message, or the deadlock watchdog trips.  Derives from
    plain :class:`CommunicationError` (not the transient flavour): the
    program is wrong, so re-issuing the operation cannot help and the
    retry layer must fail fast.
    """


class CheckpointError(ReproError, RuntimeError):
    """A durable checkpoint could not be written, read or validated.

    Covers missing/truncated shard files, manifest mismatches and CRC32
    failures detected by :mod:`repro.resilience.checkpoint`.
    """


class JournalError(ReproError, RuntimeError):
    """The write-ahead request journal is unusable or inconsistent.

    Raised by :mod:`repro.service.journal` for corruption in a *sealed*
    segment (sealed segments were fsynced before their atomic rename, so
    damage there is real bit rot, not a torn tail) and for replay
    divergence — a deterministic re-run producing a record that disagrees
    with what the journal already holds.  A torn tail on the *active*
    segment is expected after SIGKILL and is healed silently, never
    raised.
    """


class Cancelled(ReproError, RuntimeError):
    """A cooperative cancellation request stopped a solve mid-flight.

    Raised at an iteration boundary by a solver holding a fired
    :class:`~repro.service.cancel.CancelToken`.  Deliberately *not* a
    :class:`CommunicationError`: :func:`~repro.comm.spmd.launch_spmd`
    prefers non-communication errors as the primary failure, so the
    cancellation (and not the peers' secondary abort fallout) is what
    surfaces to the caller.  ``iteration`` is the boundary the solve
    stopped at — identical on every rank by construction (see
    :meth:`~repro.service.cancel.CancelToken.check`).
    """

    def __init__(self, message: str, iteration: int = -1):
        super().__init__(message)
        self.iteration = iteration


class WorkerStuck(Cancelled):
    """A worker supervisor declared a dispatch stuck and cancelled it.

    Raised at an iteration boundary by a solve holding a tripped
    :class:`~repro.service.supervisor.SupervisedToken`: either the
    iteration count blew past the supervisor's liveness budget (virtual
    clock) or the wall-clock watchdog fired (asyncio front-end).
    Subclass of :class:`Cancelled` so the abort stays rank-coherent and
    quiescent; the service classifies it separately and redispatches
    under the breaker/hedging machinery instead of failing the request.
    """


class DeadlineExceeded(Cancelled):
    """A per-request deadline expired before the solve converged.

    Subclass of :class:`Cancelled` so callers can treat client
    cancellation and deadline expiry uniformly while the service
    classifies them separately.  ``deadline_s`` is the (virtual-clock)
    absolute deadline the request carried, when known.
    """

    def __init__(self, message: str, iteration: int = -1,
                 deadline_s: float | None = None):
        super().__init__(message, iteration=iteration)
        self.deadline_s = deadline_s


def stall_error(solver: str, iterations: int, residual_norm: float,
                reference_norm: float, eps: float,
                result=None) -> ConvergenceError:
    """Uniform non-convergence error shared by every ``raise_on_stall`` path.

    The message always names the solver and reports the final *relative*
    residual and the iteration count, so harnesses can parse stalls the
    same way regardless of which solver stalled.
    """
    rel = (residual_norm / reference_norm if reference_norm
           else float("inf"))
    return ConvergenceError(
        f"{solver} did not converge in {iterations} iterations: "
        f"relative residual {rel:.3e} > eps {eps:.3e}",
        result=result)
