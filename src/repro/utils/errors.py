"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration mistakes from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied configuration (options, decks, parameters)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the requested tolerance.

    The partially converged result is attached so callers can inspect it.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class DecompositionError(ReproError, ValueError):
    """A domain decomposition request cannot be satisfied."""


class CommunicationError(ReproError, RuntimeError):
    """Misuse of, or failure inside, the SPMD communication layer."""
