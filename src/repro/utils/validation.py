"""Small argument-validation helpers used across the package.

These raise :class:`~repro.utils.errors.ConfigurationError` (a ``ValueError``
subclass) with uniform messages, keeping the call sites one-liners.
"""

from __future__ import annotations

from typing import Any, Collection

import numpy as np

from repro.utils.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise ``ConfigurationError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ConfigurationError(message)


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Validate that a numeric parameter is positive (or non-negative)."""
    if allow_zero:
        require(value >= 0, f"{name} must be >= 0, got {value!r}")
    else:
        require(value > 0, f"{name} must be > 0, got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Collection) -> Any:
    """Validate that ``value`` is one of ``allowed``."""
    require(
        value in allowed,
        f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}",
    )
    return value


def check_finite_field(name: str, field_obj: Any) -> Any:
    """Validate that a field (or array) carries only finite values.

    Solvers call this on their right-hand side and initial guess so NaN/Inf
    input fails immediately with a clear :class:`ConfigurationError` (a
    ``ValueError``) instead of silently iterating to ``max_iters`` on
    garbage.  ``None`` passes through (an omitted initial guess is legal).
    """
    if field_obj is None:
        return field_obj
    data = field_obj.interior if hasattr(field_obj, "interior") \
        else np.asarray(field_obj)
    finite = np.isfinite(data)
    if not finite.all():
        bad = int(data.size - np.count_nonzero(finite))
        raise ConfigurationError(
            f"{name} contains {bad} non-finite value(s) (NaN/Inf); "
            "refusing to start the solve on corrupt input")
    return field_obj


def check_type(name: str, value: Any, types) -> Any:
    """Validate ``isinstance(value, types)``."""
    if not isinstance(value, types):
        tn = getattr(types, "__name__", str(types))
        raise ConfigurationError(f"{name} must be {tn}, got {type(value).__name__}")
    return value
