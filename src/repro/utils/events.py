"""Event accounting used to build communication/computation profiles.

An :class:`EventLog` aggregates counts and payload sizes of the logical events
a solver emits while running (halo exchanges by depth, global reductions,
stencil applications with cell counts, ...).  The performance model in
:mod:`repro.perfmodel` consumes these profiles to predict time-to-solution on
the paper's machines; the test-suite uses them to verify the analytic
per-iteration communication formulas against what the solvers actually do.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Kind under which events recorded inside a recovery scope are re-bucketed.
#: Recovery work (checkpoint restores, failure votes, halo refreshes, ABFT
#: residual replays) performs real communication, but the per-iteration
#: ``COMM_CONTRACT`` verification must keep seeing first-attempt counts only —
#: so while a log is inside :func:`recovery_scope`, every ``record(kind, key)``
#: lands in ``(RECOVERY_KIND, kind)`` instead of ``(kind, key)``.
RECOVERY_KIND = "comm_recovery"

#: Kind under which numerical-robustness traffic is re-bucketed: residual
#: replacement checks/splices and iterative-refinement defect computations
#: (:mod:`repro.numerics`) recompute ``b - A x`` and re-reduce norms on top
#: of the solver's per-iteration budget.  Like recovery traffic, it is real
#: communication that must not pollute the first-attempt ``COMM_CONTRACT``
#: counts — it gets its own event kind so profiles and the stability sweep
#: can still account for it separately.
REPLACEMENT_KIND = "comm_replacement"


@dataclass
class EventLog:
    """Aggregated counters for logical solver/communication events.

    Events are identified by a ``kind`` string plus an optional hashable
    ``key`` refining it (e.g. ``("halo_exchange", depth)``).  Each event can
    carry additive payload quantities (``bytes=...``, ``cells=...``) which are
    accumulated per ``(kind, key)`` bucket.
    """

    counts: Counter = field(default_factory=Counter)
    quantities: dict = field(default_factory=dict)
    _recovery_depth: int = field(default=0, repr=False, compare=False)
    _replacement_depth: int = field(default=0, repr=False, compare=False)

    def record(self, kind: str, key: Any = None, n: int = 1, **amounts: float) -> None:
        """Record ``n`` occurrences of an event with additive payloads.

        Recovery scope takes precedence over replacement scope when both
        are active (a rollback triggered *by* a replacement check is
        recovery work).
        """
        if self._recovery_depth and kind != RECOVERY_KIND:
            kind, key = RECOVERY_KIND, kind
        elif self._replacement_depth and kind not in (RECOVERY_KIND,
                                                      REPLACEMENT_KIND):
            kind, key = REPLACEMENT_KIND, kind
        bucket = (kind, key)
        self.counts[bucket] += n
        if amounts:
            q = self.quantities.setdefault(bucket, Counter())
            for name, value in amounts.items():
                q[name] += value

    def count(self, kind: str, key: Any = None) -> int:
        """Number of recorded events for ``(kind, key)``."""
        return self.counts.get((kind, key), 0)

    def count_kind(self, kind: str) -> int:
        """Total events of ``kind`` across all keys."""
        return sum(n for (k, _key), n in self.counts.items() if k == kind)

    def total(self, kind: str, amount: str, key: Any = None) -> float:
        """Accumulated payload ``amount`` for ``(kind, key)``."""
        if key is not None:
            return self.quantities.get((kind, key), {}).get(amount, 0.0)
        return sum(
            q.get(amount, 0.0)
            for (k, _key), q in self.quantities.items()
            if k == kind
        )

    def recovery_count(self, kind: str | None = None) -> int:
        """Events rerouted into the recovery bucket (optionally one kind)."""
        if kind is None:
            return self.count_kind(RECOVERY_KIND)
        return self.count(RECOVERY_KIND, kind)

    @contextmanager
    def recovery_scope(self):
        """Reroute records into ``RECOVERY_KIND`` for the ``with`` body."""
        self._recovery_depth += 1
        try:
            yield self
        finally:
            self._recovery_depth -= 1

    def replacement_count(self, kind: str | None = None) -> int:
        """Events rerouted into the replacement bucket (optionally one kind)."""
        if kind is None:
            return self.count_kind(REPLACEMENT_KIND)
        return self.count(REPLACEMENT_KIND, kind)

    @contextmanager
    def replacement_scope(self):
        """Reroute records into ``REPLACEMENT_KIND`` for the ``with`` body."""
        self._replacement_depth += 1
        try:
            yield self
        finally:
            self._replacement_depth -= 1

    def keys_for(self, kind: str) -> list:
        """All refinement keys observed for ``kind``."""
        return sorted(
            {key for (k, key) in self.counts if k == kind},
            key=lambda key: (key is None, key),
        )

    def merge(self, other: "EventLog") -> "EventLog":
        """Fold another log's counters into this one (returns self)."""
        self.counts.update(other.counts)
        for bucket, q in other.quantities.items():
            self.quantities.setdefault(bucket, Counter()).update(q)
        return self

    def clear(self) -> None:
        self.counts.clear()
        self.quantities.clear()

    def as_dict(self) -> Mapping[tuple, int]:
        """Snapshot of the raw counters (for reporting/tests)."""
        return dict(self.counts)

    @staticmethod
    def merged(logs: Iterable["EventLog"]) -> "EventLog":
        """Combine several rank-local logs into one aggregate log."""
        out = EventLog()
        for log in logs:
            out.merge(log)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rows = ", ".join(f"{k}:{v}" for k, v in sorted(self.counts.items(), key=str))
        return f"EventLog({rows})"


@contextmanager
def recovery_scope(*logs: "EventLog | None"):
    """Enter the recovery scope of several logs at once.

    ``None`` entries and duplicates (the same log reachable through two
    wrappers) are tolerated, so call sites can pass every log they can see
    without worrying about aliasing::

        with recovery_scope(op.events, getattr(comm, "events", None)):
            exchanger.exchange([x], depth=1)
    """
    unique: list[EventLog] = []
    seen: set[int] = set()
    for log in logs:
        if log is not None and id(log) not in seen:
            seen.add(id(log))
            unique.append(log)
    for log in unique:
        log._recovery_depth += 1
    try:
        yield
    finally:
        for log in unique:
            log._recovery_depth -= 1


@contextmanager
def replacement_scope(*logs: "EventLog | None"):
    """Enter the replacement scope of several logs at once.

    The :mod:`repro.numerics` analogue of :func:`recovery_scope`: while
    active, events land under :data:`REPLACEMENT_KIND` so residual
    replacement / iterative refinement traffic stays out of the
    first-attempt ``COMM_CONTRACT`` counts.  ``None`` entries and
    duplicates are tolerated exactly as for :func:`recovery_scope`.
    """
    unique: list[EventLog] = []
    seen: set[int] = set()
    for log in logs:
        if log is not None and id(log) not in seen:
            seen.add(id(log))
            unique.append(log)
    for log in unique:
        log._replacement_depth += 1
    try:
        yield
    finally:
        for log in unique:
            log._replacement_depth -= 1
