"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry complements the span tracer: spans answer *where time
went*, metrics answer *how much of what happened* — iterations to
converge, halo bytes moved, retries absorbed.  All three instrument
types are plain attribute arithmetic on ``__slots__`` objects, so the
hot path (``counter.inc()``, ``histogram.observe(x)``) allocates
nothing and costs a few attribute writes.

``snapshot()`` materialises everything into one nested dict of plain
Python scalars/lists — JSON-ready, order-stable (sorted by metric name)
and detached from the live instruments, which is what the harness
reports and the test oracles consume.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ITERATION_BUCKETS",
    "BYTE_BUCKETS",
]

#: Default histogram bounds for iterations-to-converge style counts.
ITERATION_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000)

#: Default histogram bounds for payload sizes (bytes).
BYTE_BUCKETS = (64, 512, 4096, 32768, 262144, 2097152, 16777216)


class Counter:
    """Monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment "
                             f"{amount!r} (counters only go up)")
        self.value += amount


class Gauge:
    """Last-written value (residual norm, virtual clock, depth in use)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with ``len(bounds) + 1`` counters.

    ``bounds`` are inclusive upper edges: an observation ``x`` lands in
    the first bucket with ``x <= bound``, or in the overflow bucket past
    the last bound.  Bounds are fixed at construction — no re-bucketing,
    no allocation on ``observe``.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "total", "count")

    def __init__(self, name: str, bounds: Iterable[float] = ITERATION_BUCKETS):
        bounds = tuple(bounds)
        if not bounds:
            raise ValueError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} bounds must be strictly "
                             f"increasing, got {bounds}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left gives "first bound >= value": inclusive upper edges.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create home for named instruments plus ``snapshot()``.

    Names are flat dotted strings (``"solve.iterations"``); an instrument
    is created on first access and reused afterwards.  Re-requesting a
    histogram with different bounds is an error — silent re-bucketing
    would corrupt comparisons between runs.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  bounds: Iterable[float] | None = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else ITERATION_BUCKETS)
        elif bounds is not None and tuple(bounds) != h.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{h.bounds}, requested {tuple(bounds)}")
        return h

    def snapshot(self) -> dict:
        """Detached, JSON-ready view of every instrument."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.bucket_counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))
