"""Instrumentation hooks: the tracing communicator and tracer attachment.

Two ways to get spans out of a run:

- pass a :class:`~repro.observe.trace.Tracer` to the constructors that
  take one (:class:`~repro.comm.instrument.InstrumentedComm`,
  :class:`~repro.solvers.operator.StencilOperator2D`,
  :class:`~repro.mesh.halo.HaloExchanger`,
  :class:`~repro.physics.simulation.Simulation`), or
- wrap any communicator in :class:`TracingComm`, a pure decorator that
  emits one span per operation and delegates everything else.

:class:`TracingComm` composes at **any** layer of the resilient stack
(``InstrumentedComm(TracingComm(RetryingComm(FaultyComm(base))))`` or
``TracingComm(InstrumentedComm(...))``): it neither swallows nor
re-issues operations, so the first-attempt counts the COMM_CONTRACT
verifier reads from :class:`~repro.comm.instrument.EventWindow` are
identical whichever side of the retry layer it sits on — a property the
test-suite locks down (wrapper order must not matter).
"""

from __future__ import annotations

from repro.comm.base import Communicator
from repro.observe.trace import NULL_TRACER, Tracer

__all__ = ["TracingComm", "attach_tracer"]


class TracingComm(Communicator):
    """Communicator decorator that wraps every operation in a span.

    Span names mirror the event kinds recorded by
    :class:`~repro.comm.instrument.InstrumentedComm` (``p2p_send``,
    ``p2p_recv``, ``allreduce``, ...), keyed by tag/op, so span counts
    and event counts can be cross-checked one-to-one.
    """

    def __init__(self, inner: Communicator, tracer: Tracer | None = None):
        self.inner = inner
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    # -- point to point --------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        with self.tracer.span("p2p_send", tag):
            self.inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0, timeout: float | None = None):
        with self.tracer.span("p2p_recv", tag):
            if timeout is None:
                return self.inner.recv(source, tag)
            return self.inner.recv(source, tag, timeout=timeout)

    def irecv(self, source: int, tag: int = 0):
        # Completion happens in request.wait(); spanning the post alone
        # would misattribute the wait, so delegate untraced.
        return self.inner.irecv(source, tag)

    # -- collectives -----------------------------------------------------------

    def allreduce(self, value, op: str = "sum"):
        with self.tracer.span("allreduce", op):
            return self.inner.allreduce(value, op)

    def bcast(self, obj, root: int = 0):
        with self.tracer.span("bcast"):
            return self.inner.bcast(obj, root)

    def gather(self, obj, root: int = 0):
        with self.tracer.span("gather"):
            return self.inner.gather(obj, root)

    def allgather(self, obj) -> list:
        with self.tracer.span("allgather"):
            return self.inner.allgather(obj)

    def barrier(self) -> None:
        with self.tracer.span("barrier"):
            self.inner.barrier()


def attach_tracer(op, tracer: Tracer) -> Tracer:
    """Install ``tracer`` on an operator and its comm context, in place.

    Sets the tracer on the operator (``stencil`` spans), its halo
    exchanger (``halo_exchange`` spans) and — when the communicator is an
    :class:`~repro.comm.instrument.InstrumentedComm` — the comm layer
    (``allreduce``/``p2p_*`` spans).  All three share the one tracer so
    comm spans nest correctly under solver spans.  Returns the tracer.
    """
    op.tracer = tracer
    if op.exchanger is not None:
        op.exchanger.tracer = tracer
    if hasattr(op.comm, "tracer"):
        op.comm.tracer = tracer
    return tracer
