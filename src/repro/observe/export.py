"""Trace/metrics exporters: JSONL, Chrome ``trace_event`` and text.

Three consumers, three formats:

- :func:`write_jsonl` — one compact JSON object per span, sorted by
  ``(rank, t_start, span_id)`` with sorted keys, so two deterministic
  runs (virtual clock) produce byte-identical files — the determinism
  invariant the test-suite asserts;
- :func:`write_chrome_trace` — the Chrome/Perfetto ``trace_event`` JSON
  (open in ``chrome://tracing`` or https://ui.perfetto.dev); ranks map
  to trace threads, so a CPPCG solve renders as one lane per rank with
  ``solve > iteration > precond > cheby_step`` stacks;
- :func:`summary_table` / :func:`metrics_table` — human-readable text
  for terminals and the harness report directory.

All exporters take plain span iterables, so merged multi-rank traces
(one :class:`~repro.observe.trace.Tracer` per rank) export the same way
as single-rank ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.observe.trace import Span, sort_spans

__all__ = [
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "summary_table",
    "metrics_table",
]

#: seconds -> microseconds (the trace_event timestamp unit).
_US = 1e6


def _jsonable_key(key) -> object:
    """Span keys are arbitrary hashables; JSON needs a stable scalar."""
    if key is None or isinstance(key, (bool, int, float, str)):
        return key
    return repr(key)


def jsonl_lines(spans: Iterable[Span]) -> list[str]:
    """One compact, key-sorted JSON object per span (canonical order)."""
    lines = []
    for s in sort_spans(spans):
        d = s.as_dict()
        d["key"] = _jsonable_key(d["key"])
        lines.append(json.dumps(d, sort_keys=True, separators=(",", ":")))
    return lines


def write_jsonl(spans: Iterable[Span], path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "\n".join(jsonl_lines(spans))
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


def chrome_trace(spans: Iterable[Span]) -> dict:
    """Chrome ``trace_event`` document: complete ("ph: X") events.

    Timestamps are microseconds; every rank becomes a thread (``tid``)
    of one process (``pid`` 0), which is how the viewers lay out lanes.
    """
    events = []
    for s in sort_spans(spans):
        events.append({
            "name": s.name,
            "cat": "repro",
            "ph": "X",
            "ts": s.t_start * _US,
            "dur": s.duration * _US,
            "pid": 0,
            "tid": s.rank,
            "args": {
                "key": _jsonable_key(s.key),
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "depth": s.depth,
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans), sort_keys=True),
                    encoding="utf-8")
    return path


def self_times(spans: Iterable[Span]) -> dict[int, float]:
    """Exclusive duration per ``span_id``: own time minus direct children.

    Clamped at zero — a ring-buffer-truncated trace can reference a
    parent whose children outlived it in the buffer.
    """
    spans = list(spans)
    durations = {s.span_id: s.duration for s in spans}
    child_sums: dict[int, float] = {}
    for s in spans:
        if s.parent_id >= 0 and s.parent_id in durations:
            child_sums[s.parent_id] = child_sums.get(s.parent_id, 0.0) \
                + s.duration
    return {sid: max(0.0, dur - child_sums.get(sid, 0.0))
            for sid, dur in durations.items()}


def summary_table(spans: Iterable[Span]) -> str:
    """Per-name aggregate: count, total/self/mean time, sorted by total."""
    from repro.io.tables import format_table

    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    exclusive = self_times(spans)
    agg: dict[str, list[float]] = {}
    for s in spans:
        row = agg.setdefault(s.name, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += s.duration
        row[2] += exclusive[s.span_id]
    rows = [
        [name, count, f"{total:.6f}", f"{self_t:.6f}",
         f"{total / count:.6f}"]
        for name, (count, total, self_t) in sorted(
            agg.items(), key=lambda kv: -kv[1][1])
    ]
    return format_table(
        ["span", "count", "total_s", "self_s", "mean_s"], rows)


def metrics_table(snapshot: dict) -> str:
    """Text rendering of a :meth:`MetricsRegistry.snapshot` mapping."""
    from repro.io.tables import format_table

    rows: list[list] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append(["counter", name, value])
    for name, value in snapshot.get("gauges", {}).items():
        rows.append(["gauge", name, f"{value:g}"])
    for name, h in snapshot.get("histograms", {}).items():
        rows.append(["histogram", name,
                     f"count={h['count']} sum={h['sum']:g} "
                     f"buckets={h['counts']}"])
    if not rows:
        return "(no metrics recorded)"
    return format_table(["type", "metric", "value"], rows)
