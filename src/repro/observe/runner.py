"""Traced solve drivers and metrics recorders.

This is the convenience layer the CLI (``repro trace``), the harness
report and the test-suite share: build a fully instrumented solve — one
:class:`~repro.observe.trace.Tracer` per rank, an
:class:`~repro.comm.instrument.InstrumentedComm` event log, and the
stencil operator with the tracer threaded through — run it over the
in-process SPMD world, and hand back everything an exporter or test
oracle needs in one :class:`TraceRun`.

Determinism: pass ``clock_factory=lambda rank: VirtualClock(tick=1e-6)``
and two identical runs produce byte-identical JSONL traces (the
invariant ``tests/test_observe.py`` locks down).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observe.metrics import ITERATION_BUCKETS, MetricsRegistry
from repro.observe.trace import Span, Tracer, sort_spans

__all__ = [
    "TraceRun",
    "traced_solve",
    "traced_crooked_pipe",
    "deck_system",
    "record_solve_metrics",
    "record_resilience_metrics",
    "record_stability_metrics",
    "record_chaos_metrics",
]


@dataclass
class TraceRun:
    """Everything one traced solve produced."""

    result: object                 # rank-0 SolveResult
    tracers: list                  # one Tracer per rank (index = rank)
    events: object                 # rank-0 EventLog
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def spans(self) -> list[Span]:
        """All ranks' finished spans merged in canonical order."""
        merged: list[Span] = []
        for t in self.tracers:
            merged.extend(t.finished())
        return sort_spans(merged)


def deck_system(deck):
    """Global ``(grid, kxg, kyg, bg)`` of a deck's first implicit step.

    Mirrors what ``repro solve`` sets up: the deck's painted initial
    state, its conductivity model and its initial timestep.
    """
    from repro.physics import cell_conductivity, face_coefficients
    from repro.physics.deck import deck_to_problem
    from repro.physics.state import global_initial_state

    grid = deck.grid
    density, _, u0 = global_initial_state(grid, deck_to_problem(deck))
    kappa = cell_conductivity(density, deck.tl_coefficient)
    rx = deck.initial_timestep / grid.dx ** 2
    ry = deck.initial_timestep / grid.dy ** 2
    kxg, kyg = face_coefficients(kappa, rx, ry)
    return grid, kxg, kyg, u0


def traced_solve(grid, kxg, kyg, bg, options, *,
                 size: int = 1,
                 clock_factory=None,
                 capacity: int = 1 << 16) -> TraceRun:
    """Solve a global system with per-rank tracing over ``size`` ranks.

    ``clock_factory``: optional ``rank -> callable`` producing each
    tracer's clock (default: wall ``time.perf_counter``).
    """
    from repro.comm import InstrumentedComm, launch_spmd
    from repro.mesh import Field, decompose
    from repro.solvers import StencilOperator2D, solve_linear
    from repro.utils import EventLog

    halo = options.required_field_halo

    def rank_main(comm):
        clock = clock_factory(comm.rank) if clock_factory is not None \
            else None
        tracer = Tracer(clock=clock, rank=comm.rank, capacity=capacity)
        log = EventLog()
        comm = InstrumentedComm(comm, log, tracer=tracer)
        tile = decompose(grid, comm.size)[comm.rank]
        op = StencilOperator2D.from_global_faces(
            tile, halo, kxg, kyg, comm, events=log, tracer=tracer)
        b = Field.from_global(tile, halo, bg)
        result = solve_linear(op, b, options=options)
        return result, log, tracer

    results = launch_spmd(rank_main, size)
    run = TraceRun(result=results[0][0], events=results[0][1],
                   tracers=[r[2] for r in results])
    record_solve_metrics(run.metrics, run.result, run.events)
    return run


def traced_crooked_pipe(n: int = 24, options=None, **kwargs) -> TraceRun:
    """Traced solve of the crooked-pipe first implicit step (CG default)."""
    from repro.solvers import SolverOptions
    from repro.testing import crooked_pipe_system

    grid, kxg, kyg, bg = crooked_pipe_system(n)
    if options is None:
        options = SolverOptions(solver="cg")
    return traced_solve(grid, kxg, kyg, bg, options, **kwargs)


def record_solve_metrics(registry: MetricsRegistry, result, events) -> None:
    """Fill ``registry`` from a solve result plus its event log.

    Recorded names (the schema the harness/tests consume):

    - counters ``solve.iterations``, ``solve.inner_iterations``,
      ``solve.allreduces``, ``solve.halo_exchanges``, ``solve.retries``;
    - gauges ``solve.residual_norm``, ``solve.converged`` (0/1);
    - histogram ``solve.iterations_hist`` on :data:`ITERATION_BUCKETS`;
    - counter ``comm.halo_bytes`` (total exchanged payload).
    """
    from repro.comm.instrument import RETRY_KIND

    registry.counter("solve.iterations").inc(result.iterations)
    registry.counter("solve.inner_iterations").inc(result.inner_iterations)
    registry.counter("solve.allreduces").inc(events.count_kind("allreduce"))
    registry.counter("solve.halo_exchanges").inc(
        events.count_kind("halo_exchange"))
    registry.counter("solve.retries").inc(events.count_kind(RETRY_KIND))
    registry.counter("comm.halo_bytes").inc(
        int(events.total("halo_exchange", "bytes")))
    registry.gauge("solve.residual_norm").set(result.residual_norm)
    registry.gauge("solve.converged").set(1.0 if result.converged else 0.0)
    registry.histogram("solve.iterations_hist",
                       ITERATION_BUCKETS).observe(result.iterations)


def record_resilience_metrics(registry: MetricsRegistry, report) -> None:
    """Fill ``registry`` from one :class:`ResilienceReport`.

    The counters mirror the cell schema of
    :meth:`~repro.harness.resilience_sweep.ResilienceSweepResult.as_dict`,
    which is how the test-suite uses this as an independent oracle.
    """
    registry.counter("resilience.iterations").inc(report.iterations)
    registry.counter("resilience.faults").inc(len(report.fault_events))
    registry.counter("resilience.retries").inc(report.retries)
    registry.counter("resilience.rollbacks").inc(report.rollbacks)
    registry.counter("resilience.checkpoints").inc(report.checkpoints)
    registry.counter("resilience.recoveries").inc(report.recoveries)
    registry.counter("resilience.integrity_detections").inc(
        report.integrity_detections)
    registry.counter("resilience.integrity_repairs").inc(
        report.integrity_repairs)
    registry.gauge("resilience.relative_residual").set(
        report.relative_residual)
    registry.gauge("resilience.converged").set(
        1.0 if report.converged else 0.0)
    registry.gauge("resilience.degraded").set(
        1.0 if report.degraded else 0.0)
    registry.gauge("resilience.virtual_time_s").set(report.virtual_time_s)


def record_chaos_metrics(registry: MetricsRegistry, campaign) -> None:
    """Fill ``registry`` from one :class:`ChaosCampaignResult`.

    The counters mirror the per-class aggregates of the ``CHAOS_<n>.json``
    ledger (:meth:`~repro.resilience.chaos.ChaosCampaignResult.class_stats`),
    which is how the test-suite uses this as an independent oracle for the
    campaign's SLO accounting.  Per-class counters are suffixed with the
    fault class, e.g. ``chaos.converged.transient``.
    """
    registry.counter("chaos.trials").inc(len(campaign.results))
    registry.counter("chaos.oracle_violations").inc(
        len(campaign.oracle_violations))
    registry.counter("chaos.budget_violations").inc(
        len(campaign.budget_violations()))
    registry.gauge("chaos.passed").set(1.0 if campaign.passed else 0.0)
    for cls, s in campaign.class_stats().items():
        registry.counter(f"chaos.converged.{cls}").inc(s["converged"])
        registry.counter(f"chaos.failed.{cls}").inc(s["failed"])
        registry.counter(f"chaos.aborted.{cls}").inc(s["aborted"])
        registry.counter(f"chaos.retries.{cls}").inc(s["retries"])
        registry.counter(f"chaos.rollbacks.{cls}").inc(s["rollbacks"])
        registry.counter(f"chaos.recoveries.{cls}").inc(s["recoveries"])
        registry.gauge(f"chaos.recovery_rate.{cls}").set(s["recovery_rate"])
        registry.gauge(f"chaos.virtual_time_s.{cls}").set(
            s["virtual_time_s"])


def record_stability_metrics(registry: MetricsRegistry, cell) -> None:
    """Fill ``registry`` from one :class:`StabilityCell`.

    The counters mirror the cell schema of
    :meth:`~repro.harness.stability_sweep.StabilitySweepResult.as_dict`,
    which is how the test-suite uses this as an independent oracle for
    the stability sweep's numerics accounting.
    """
    registry.counter("stability.iterations").inc(cell.iterations)
    registry.counter("stability.total_iterations").inc(cell.total_iterations)
    registry.counter("stability.replacement_checks").inc(
        cell.replacement_checks)
    registry.counter("stability.replacement_splices").inc(
        cell.replacement_splices)
    registry.counter("stability.refinement_steps").inc(cell.refinement_steps)
    registry.counter("stability.breakdowns").inc(1 if cell.breakdown else 0)
    registry.gauge("stability.true_residual").set(cell.true_residual)
    registry.gauge("stability.recurrence_residual").set(
        cell.recurrence_residual)
    registry.gauge("stability.drift_orders").set(cell.drift_orders)
    registry.gauge("stability.converged").set(1.0 if cell.converged else 0.0)
    registry.gauge("stability.escalated").set(1.0 if cell.escalated else 0.0)
