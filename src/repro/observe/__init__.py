"""repro.observe — per-rank tracing, metrics and profiling hooks.

Observability for the solver design space (docs/observability.md):

- :mod:`~repro.observe.trace` — nested spans (``step > solve >
  iteration > {stencil, halo_exchange, allreduce, precond}``) with
  per-rank ids, monotonic timestamps from a pluggable clock and a
  bounded ring buffer; the disabled path (:data:`NULL_TRACER`) adds no
  per-iteration allocations;
- :mod:`~repro.observe.metrics` — counters, gauges and fixed-bucket
  histograms with a ``snapshot()`` dict API;
- :mod:`~repro.observe.export` — JSONL, Chrome ``trace_event`` and text
  summaries;
- :mod:`~repro.observe.hooks` — :class:`TracingComm` decorator and
  :func:`attach_tracer`;
- :mod:`~repro.observe.runner` — one-call traced solves for the CLI,
  harness and tests.
"""

from repro.observe.export import (
    chrome_trace,
    jsonl_lines,
    metrics_table,
    self_times,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from repro.observe.hooks import TracingComm, attach_tracer
from repro.observe.metrics import (
    BYTE_BUCKETS,
    ITERATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.runner import (
    TraceRun,
    deck_system,
    record_chaos_metrics,
    record_resilience_metrics,
    record_solve_metrics,
    record_stability_metrics,
    traced_crooked_pipe,
    traced_solve,
)
from repro.observe.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    sort_spans,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "sort_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ITERATION_BUCKETS",
    "BYTE_BUCKETS",
    "TracingComm",
    "attach_tracer",
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "self_times",
    "summary_table",
    "metrics_table",
    "TraceRun",
    "traced_solve",
    "traced_crooked_pipe",
    "deck_system",
    "record_solve_metrics",
    "record_chaos_metrics",
    "record_resilience_metrics",
    "record_stability_metrics",
]
