"""Per-rank span tracing with bounded buffers and a pluggable clock.

A :class:`Tracer` records **spans** — named, nested intervals such as
``step > solve > iteration > {stencil, halo_exchange, allreduce,
precond}`` — into a bounded in-memory ring buffer.  Timestamps come from
a pluggable zero-argument clock (default :func:`time.perf_counter`);
passing a :class:`~repro.resilience.retry.VirtualClock` with a non-zero
``tick`` makes every trace of a deterministic run byte-identical, which
is how the invariant test-suite pins nesting/monotonicity/determinism.

Instrumentation sites throughout the solvers, the halo exchanger and the
instrumented communicator call ``tracer.span(name, key)`` in their hot
loops.  When tracing is off they hold the shared :data:`NULL_TRACER`,
whose ``span`` returns one preallocated no-op context manager — the
disabled hot path performs **zero allocations** (asserted by
``tests/test_observe.py`` via ``tracemalloc``), so instrumentation can
stay permanently compiled into the iteration loops.

Span attributes are deliberately a single hashable ``key`` (mirroring
:class:`~repro.utils.events.EventLog`'s ``(kind, key)`` buckets) rather
than ``**kwargs``: keyword calls would allocate an argument dict even on
the disabled path.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "sort_spans",
           "tracer_of"]


@dataclass(frozen=True)
class Span:
    """One finished, immutable span.

    ``span_id`` is assigned at entry in creation order (per tracer), so
    sorting by it recovers the call order; ``parent_id`` is ``-1`` for
    roots.  ``depth`` is the nesting level (0 for roots).
    """

    name: str
    key: Any
    rank: int
    span_id: int
    parent_id: int
    depth: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def as_dict(self) -> dict:
        """JSON-ready mapping (stable keys; see exporters)."""
        return {
            "name": self.name,
            "key": self.key,
            "rank": self.rank,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }


class _NullSpan:
    """The shared no-op context manager the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same preallocated no-op.

    Kept stateless and shared (:data:`NULL_TRACER`) so holding it as a
    default costs nothing and the hot path never allocates.
    """

    __slots__ = ()

    enabled = False
    rank = -1
    dropped = 0

    def span(self, name: str, key: Any = None) -> _NullSpan:
        return _NULL_SPAN

    def finished(self) -> tuple:
        return ()

    def counts(self) -> dict:
        return {}

    def clear(self) -> None:
        return None


NULL_TRACER = NullTracer()


def tracer_of(obj) -> "Tracer | NullTracer":
    """The tracer installed on ``obj``, or :data:`NULL_TRACER`.

    Solvers fetch their tracer this way so operator-like objects that
    never grew a ``tracer`` attribute (3D operators, multigrid levels,
    test doubles) keep working untraced.
    """
    t = getattr(obj, "tracer", None)
    return t if t is not None else NULL_TRACER


class _ActiveSpan:
    """A span between entry and exit (the ``with`` object).

    One short-lived object per enabled span; the finished record is the
    immutable :class:`Span` appended to the tracer's ring buffer.
    """

    __slots__ = ("_tracer", "name", "key", "span_id", "parent_id", "depth",
                 "t_start")

    def __init__(self, tracer: "Tracer", name: str, key: Any):
        self._tracer = tracer
        self.name = name
        self.key = key

    def __enter__(self) -> "_ActiveSpan":
        tr = self._tracer
        self.span_id = tr._next_id
        tr._next_id += 1
        stack = tr._stack
        if stack:
            top = stack[-1]
            self.parent_id = top.span_id
            self.depth = top.depth + 1
        else:
            self.parent_id = -1
            self.depth = 0
        stack.append(self)
        # Read the clock last so child t_start >= parent t_start even on
        # coarse clocks, keeping the nesting invariants exact.
        self.t_start = tr.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tr = self._tracer
        t_end = tr.clock()
        popped = tr._stack.pop()
        if popped is not self:
            tr._stack.append(popped)
            raise RuntimeError(
                f"span {self.name!r} exited while {popped.name!r} is "
                "innermost; spans must strictly nest (always use `with`)")
        buf = tr._spans
        if len(buf) == tr.capacity:
            tr.dropped += 1
        buf.append(Span(self.name, self.key, tr.rank, self.span_id,
                        self.parent_id, self.depth, self.t_start, t_end))
        return False


class Tracer:
    """Per-rank span recorder with a bounded ring buffer.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonic seconds.  Defaults to
        :func:`time.perf_counter`; pass a
        :class:`~repro.resilience.retry.VirtualClock` (callable, with a
        per-read ``tick``) for deterministic traces.
    rank:
        The SPMD rank the spans belong to (exporters map it to the trace
        ``tid``).
    capacity:
        Ring-buffer bound.  When full, the **oldest** finished span is
        dropped and :attr:`dropped` incremented — tracing long runs is
        safe by construction, it just forgets the distant past.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None,
                 rank: int = 0, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock if clock is not None else time.perf_counter
        self.rank = rank
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._stack: list[_ActiveSpan] = []
        self._next_id = 0
        #: finished spans evicted by the ring bound
        self.dropped = 0

    def span(self, name: str, key: Any = None) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("iteration"):``."""
        return _ActiveSpan(self, name, key)

    # -- introspection ---------------------------------------------------------

    @property
    def active_depth(self) -> int:
        """Number of currently-open spans."""
        return len(self._stack)

    def finished(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        return list(self._spans)

    def counts(self) -> dict[str, int]:
        """Finished-span count per name."""
        out: dict[str, int] = {}
        for s in self._spans:
            out[s.name] = out.get(s.name, 0) + 1
        return out

    def count(self, name: str, key: Any = ...) -> int:
        """Finished spans named ``name`` (optionally matching ``key``)."""
        return sum(1 for s in self._spans
                   if s.name == name and (key is ... or s.key == key))

    def clear(self) -> None:
        """Drop finished spans (open spans are unaffected)."""
        self._spans.clear()
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tracer(rank={self.rank}, finished={len(self._spans)}, "
                f"open={len(self._stack)}, dropped={self.dropped})")


def sort_spans(spans: Iterable[Span]) -> list[Span]:
    """Canonical export order: by rank, then start time, then creation id.

    Creation id breaks ties exactly (virtual clocks with ``tick = 0``
    produce equal timestamps), so the order — and therefore every
    exporter's output — is deterministic.
    """
    return sorted(spans, key=lambda s: (s.rank, s.t_start, s.span_id))
