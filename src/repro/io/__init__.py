"""Output helpers: text tables, ASCII field rendering, snapshots."""

from repro.io.tables import format_table, format_series_table
from repro.io.ascii_viz import render_heatmap
from repro.io.snapshots import save_field_npy, save_field_csv, load_field_npy
from repro.io.vtk import write_vtk, read_vtk

__all__ = [
    "format_table",
    "format_series_table",
    "render_heatmap",
    "save_field_npy",
    "save_field_csv",
    "load_field_npy",
    "write_vtk",
    "read_vtk",
]
