"""Legacy-VTK output (TeaLeaf's ``visit_frequency`` files).

TeaLeaf periodically dumps its fields as legacy ASCII VTK rectilinear
grids for VisIt/ParaView.  This writer reproduces that format for 2D and
3D cell-centred fields; the reader exists so the tests (and users without
a visualiser) can round-trip the files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.mesh.grid import Grid2D, Grid3D
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require


def write_vtk(path, grid: Grid2D | Grid3D,
              fields: dict[str, np.ndarray],
              title: str = "tealeaf") -> Path:
    """Write cell-centred fields on a rectilinear grid as legacy VTK.

    ``fields`` maps names to arrays of the grid's shape.  Returns the
    written path.
    """
    require(bool(fields), "need at least one field to write")
    if isinstance(grid, Grid2D):
        nx, ny, nz = grid.nx, grid.ny, 1
        xmin, xmax, ymin, ymax = grid.extent
        zmin, zmax = 0.0, 0.0
        dx, dy, dz = grid.dx, grid.dy, 0.0
    elif isinstance(grid, Grid3D):
        nx, ny, nz = grid.nx, grid.ny, grid.nz
        xmin, xmax, ymin, ymax, zmin, zmax = grid.extent
        dx, dy, dz = grid.dx, grid.dy, grid.dz
    else:
        raise ConfigurationError(f"unsupported grid type {type(grid)}")
    n_cells = nx * ny * nz
    for name, arr in fields.items():
        require(np.asarray(arr).size == n_cells,
                f"field {name!r} has {np.asarray(arr).size} values for "
                f"{n_cells} cells")
        require(" " not in name, f"VTK field names cannot contain spaces: "
                f"{name!r}")

    def coords(lo: float, n: int, d: float) -> str:
        return " ".join(f"{lo + i * d:.10g}" for i in range(n + 1))

    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET RECTILINEAR_GRID",
        f"DIMENSIONS {nx + 1} {ny + 1} {nz + 1}",
        f"X_COORDINATES {nx + 1} double",
        coords(xmin, nx, dx),
        f"Y_COORDINATES {ny + 1} double",
        coords(ymin, ny, dy),
        f"Z_COORDINATES {nz + 1} double",
        coords(zmin, nz, dz) if nz > 0 else "0",
        f"CELL_DATA {n_cells}",
    ]
    for name, arr in fields.items():
        lines.append(f"SCALARS {name} double 1")
        lines.append("LOOKUP_TABLE default")
        flat = np.asarray(arr, dtype=np.float64).ravel()
        for start in range(0, flat.size, 6):
            lines.append(" ".join(f"{v:.10e}"
                                  for v in flat[start:start + 6]))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    return path


def read_vtk(path) -> tuple[tuple[int, ...], dict[str, np.ndarray]]:
    """Read a file written by :func:`write_vtk`.

    Returns ``(cell_shape, fields)`` where ``cell_shape`` is ``(ny, nx)``
    or ``(nz, ny, nx)`` and fields are reshaped to it.
    """
    tokens = Path(path).read_text(encoding="ascii").split()
    it = iter(range(len(tokens)))

    def find(word: str, start: int = 0) -> int:
        for i in range(start, len(tokens)):
            if tokens[i] == word:
                return i
        raise ConfigurationError(f"malformed VTK file: missing {word}")

    i = find("DIMENSIONS")
    nx = int(tokens[i + 1]) - 1
    ny = int(tokens[i + 2]) - 1
    nz = int(tokens[i + 3]) - 1
    i = find("CELL_DATA")
    n_cells = int(tokens[i + 1])
    shape = (nz, ny, nx) if nz > 1 else (ny, nx)
    fields: dict[str, np.ndarray] = {}
    pos = i + 2
    while pos < len(tokens):
        if tokens[pos] != "SCALARS":
            pos += 1
            continue
        name = tokens[pos + 1]
        data_start = find("default", pos) + 1
        vals = np.array([float(v)
                         for v in tokens[data_start:data_start + n_cells]])
        fields[name] = vals.reshape(shape)
        pos = data_start + n_cells
    return shape, fields
