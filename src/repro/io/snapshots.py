"""Field snapshot persistence (NumPy binary and CSV)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.utils.validation import require


def save_field_npy(path, field: np.ndarray) -> Path:
    """Save a field as ``.npy``; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path, np.asarray(field))
    return path if path.suffix == ".npy" else path.with_suffix(".npy")


def load_field_npy(path) -> np.ndarray:
    """Load a field saved by :func:`save_field_npy`."""
    return np.load(Path(path))


def save_field_csv(path, field: np.ndarray, fmt: str = "%.10e") -> Path:
    """Save a 2D field as CSV (one row per mesh row)."""
    field = np.asarray(field)
    require(field.ndim == 2, f"need a 2D array, got shape {field.shape}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savetxt(path, field, delimiter=",", fmt=fmt)
    return path
