"""Field snapshot persistence (NumPy binary and CSV).

Writes are *atomic*: data lands in a temporary file in the destination
directory, is flushed and fsynced, then renamed over the final path with
:func:`os.replace`.  A crash mid-write leaves either the old snapshot or
none — never a torn file.  :func:`load_field_npy` validates what it reads
(finite-ness on request, dtype/shape sanity) so a corrupted snapshot is
reported as :class:`~repro.utils.errors.CheckpointError` instead of
propagating NaNs into a resumed run.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.utils.errors import CheckpointError
from repro.utils.validation import require


def _atomic_write(path: Path, writer) -> None:
    """Run ``writer(open file)`` against a temp file, fsync, rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_field_npy(path, field: np.ndarray) -> Path:
    """Atomically save a field as ``.npy``; returns the written path."""
    path = Path(path)
    if path.suffix != ".npy":
        path = path.with_suffix(".npy")
    arr = np.asarray(field)
    _atomic_write(path, lambda fh: np.save(fh, arr))
    return path


def load_field_npy(path, *, require_finite: bool = False) -> np.ndarray:
    """Load and validate a field saved by :func:`save_field_npy`.

    Raises :class:`CheckpointError` when the file is unreadable (torn or
    corrupted) or, with ``require_finite``, contains NaN/Inf.
    """
    path = Path(path)
    try:
        arr = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable field snapshot {path}: {exc}") \
            from exc
    if require_finite and not np.isfinite(arr).all():
        raise CheckpointError(
            f"field snapshot {path} contains non-finite values")
    return arr


def save_field_csv(path, field: np.ndarray, fmt: str = "%.10e") -> Path:
    """Atomically save a 2D field as CSV (one row per mesh row)."""
    field = np.asarray(field)
    require(field.ndim == 2, f"need a 2D array, got shape {field.shape}")
    path = Path(path)
    _atomic_write(path, lambda fh: np.savetxt(fh, field, delimiter=",",
                                              fmt=fmt))
    return path
