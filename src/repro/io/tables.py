"""Plain-text table formatting for harness output."""

from __future__ import annotations

from typing import Sequence

from repro.utils.errors import ConfigurationError


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 float_fmt: str = "{:.3f}") -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    def fmt(v):
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    srows = [[fmt(v) for v in row] for row in rows]
    for row in srows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}")
    widths = [max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in srows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(node_counts: Sequence[int],
                        series: dict[str, Sequence[float]],
                        value_fmt: str = "{:.2f}") -> str:
    """A figure as a table: one row per node count, one column per line."""
    headers = ["Nodes"] + list(series)
    rows = []
    for i, n in enumerate(node_counts):
        row = [str(n)]
        for label in series:
            vals = series[label]
            row.append(value_fmt.format(vals[i]) if i < len(vals) else "-")
        rows.append(row)
    return format_table(headers, rows)
