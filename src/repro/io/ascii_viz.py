"""ASCII heat-map rendering (matplotlib-free Fig. 3).

Maps a 2D field onto a character ramp, downsampling to a requested
terminal width.  "Redder colors indicate higher temperatures" becomes
denser glyphs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, require

#: Light -> dense ramp (cold -> hot).
DEFAULT_RAMP = " .:-=+*#%@"


def render_heatmap(field: np.ndarray, width: int = 72,
                   ramp: str = DEFAULT_RAMP,
                   log_scale: bool = True,
                   origin_lower: bool = True) -> str:
    """Render a 2D array as ASCII art.

    Parameters
    ----------
    field:
        ``(ny, nx)`` array, row 0 at the bottom of the domain.
    width:
        Output width in characters; height follows the aspect ratio
        (halved, since terminal cells are ~2x taller than wide).
    log_scale:
        Normalise in log space — the crooked-pipe temperatures span four
        orders of magnitude, linear scaling shows nothing.
    origin_lower:
        Print row 0 at the bottom (matching the paper's plot orientation).
    """
    check_positive("width", width)
    require(field.ndim == 2, f"need a 2D array, got shape {field.shape}")
    require(len(ramp) >= 2, "ramp needs at least two glyphs")
    ny, nx = field.shape
    width = min(width, nx)
    height = max(1, round(ny / nx * width / 2))

    # Block-average downsample via bin assignment.
    ybins = np.linspace(0, ny, height + 1).astype(int)
    xbins = np.linspace(0, nx, width + 1).astype(int)
    small = np.empty((height, width))
    for i in range(height):
        band = field[ybins[i]:max(ybins[i + 1], ybins[i] + 1)]
        for j in range(width):
            small[i, j] = band[:, xbins[j]:max(xbins[j + 1], xbins[j] + 1)].mean()

    vals = np.log10(np.maximum(small, 1e-300)) if log_scale else small
    lo, hi = float(vals.min()), float(vals.max())
    if hi <= lo:
        idx = np.zeros_like(vals, dtype=int)
    else:
        idx = ((vals - lo) / (hi - lo) * (len(ramp) - 1)).round().astype(int)
    rows = ["".join(ramp[k] for k in line) for line in idx]
    if origin_lower:
        rows.reverse()
    return "\n".join(rows)
