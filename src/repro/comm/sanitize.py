"""Runtime SPMD sanitizer: fail loudly where plain SPMD bugs would hang.

:class:`SanitizerComm` wraps any :class:`~repro.comm.base.Communicator`
and cross-checks, at every collective, a *fingerprint* of the operation
(kind, reduce op, payload dtype/shape, call-site) against what every other
rank of the same world deposited for the same round.  Divergent collectives
— the classic ``if comm.rank == 0: comm.allreduce(...)`` deadlock — become
a structured :class:`~repro.utils.errors.SanitizerError` naming both
call-sites instead of a hang.  Three checks run:

- **collective fingerprint cross-check** — all ranks must issue the same
  collective kind (and, for reductions, the same op) each round; payload
  dtype/shape must agree for reductions;
- **p2p write-epoch tracking** — every mailbox ``(src, dst, tag)`` carries
  write/read epoch counters and a queue of message stamps (dtype, shape,
  send call-site).  A second *distinct* call-site writing a channel whose
  previous write is still undrained is an ambiguous-matching race; a
  received payload that does not match its stamp is a crossed message;
  :meth:`SanitizerComm.check_quiescent` reports orphaned messages;
- **deadlock watchdog** — collective synchronisation and blocking receives
  are bounded by timeouts; on expiry the sanitizer dumps every rank's
  last-known operation, the undelivered messages relevant to the blocked
  receive (naming the *sender's* call-site), and the live thread stacks.

The sanitizer is purely observational: payloads pass through untouched
(bit-identical results), no events are recorded (``EventLog`` accounting
and the recovery/replacement rerouting of PRs 2-5 stay exactly as they
were), and unknown attributes (``events``, ``world``) delegate to the
wrapped communicator so instrumentation underneath remains reachable.
Stack it *outermost*: retries and checksum lanes below it then stay
invisible, so the sanitizer sees only first-attempt logical operations.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.comm.base import Communicator, Request
from repro.utils.errors import CommunicationError, SanitizerError

#: Default bound on how long one rank may sit in a collective waiting for
#: the rest of the world before the watchdog declares divergence.
DEFAULT_COLLECTIVE_TIMEOUT_S = 60.0
#: Default bound on a blocking point-to-point receive.
DEFAULT_P2P_TIMEOUT_S = 30.0

_THIS_FILE = __file__


def _callsite() -> str:
    """``file.py:line`` of the innermost frame outside the sanitizer."""
    for frame in reversed(traceback.extract_stack()):
        if frame.filename != _THIS_FILE:
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


def _stamp(obj) -> tuple[str, tuple]:
    """(dtype, shape) identity of a payload for cross-rank comparison."""
    if isinstance(obj, np.ndarray):
        return (str(obj.dtype), obj.shape)
    if isinstance(obj, (bool, int, float, complex, np.floating, np.integer)):
        return ("scalar", ())
    if isinstance(obj, (list, tuple)):
        return ("seq", (len(obj),))
    if obj is None:
        return ("none", ())
    return (type(obj).__name__, ())


@dataclass(frozen=True)
class CollectiveFingerprint:
    """Per-rank identity of one collective call.

    ``site`` is carried for reporting but excluded from :meth:`matches`:
    the symmetric idiom ``bcast(payload) if rank == root else bcast(None)``
    legitimately issues the same collective from two source lines (and
    with divergent payload stamps — only reductions compare payloads,
    because every rank's contribution to a reduction must be congruent).
    """

    kind: str
    op: str | None
    dtype: str | None
    shape: tuple | None
    root: int | None
    site: str

    def matches(self, other: "CollectiveFingerprint") -> bool:
        return (self.kind == other.kind and self.op == other.op
                and self.dtype == other.dtype and self.shape == other.shape
                and self.root == other.root)

    def describe(self) -> str:
        bits = [self.kind]
        if self.op is not None:
            bits.append(f"op={self.op}")
        if self.dtype is not None:
            bits.append(f"{self.dtype}{list(self.shape or ())}")
        if self.root is not None:
            bits.append(f"root={self.root}")
        return f"{' '.join(bits)} at {self.site}"


class SanitizerState:
    """Shared cross-rank state for one sanitized world.

    Create one per world and hand the same instance to every rank's
    :class:`SanitizerComm`.  A single-rank state (the default when a
    wrapper is built without one) degenerates to self-checks only.
    """

    def __init__(self, size: int,
                 collective_timeout: float = DEFAULT_COLLECTIVE_TIMEOUT_S):
        if size < 1:
            raise CommunicationError(
                f"sanitizer world size must be >= 1, got {size}")
        self.size = size
        self.collective_timeout = collective_timeout
        # Reentrant: the epoch trackers call fail() (which re-acquires
        # the lock to record the failure) while still holding it.
        self.lock = threading.RLock()
        self.barrier = threading.Barrier(size)
        self.slots: list[CollectiveFingerprint | None] = [None] * size
        self.status = ["idle (no operation yet)"] * size
        self.threads: dict[int, int] = {}
        self.rounds = 0
        self.failure: str | None = None
        # (src, dst, tag) -> {"writes", "reads", "pending": deque of
        #                     {"epoch", "site", "stamp"}}
        self.channels: dict[tuple[int, int, int], dict] = {}

    # -- failure plumbing ------------------------------------------------------

    def fail(self, rank: int, message: str) -> SanitizerError:
        """Record the first failure, break peers out of barriers, and
        build the error for the detecting rank to raise."""
        with self.lock:
            if self.failure is None:
                self.failure = f"rank {rank}: {message}"
        self.barrier.abort()
        return SanitizerError(message)

    # -- collectives -----------------------------------------------------------

    def check_collective(self, rank: int,
                         fp: CollectiveFingerprint) -> None:
        self.threads[rank] = threading.get_ident()
        self.status[rank] = f"in collective {fp.describe()}"
        self.slots[rank] = fp
        if self.size > 1:
            self._sync(rank)
        fps = list(self.slots)
        if self.size > 1:
            self._sync(rank)
        self.rounds += 1
        mine = fps[rank]
        for other_rank, other in enumerate(fps):
            if other is None:
                raise self.fail(rank, (
                    f"collective fingerprint missing for rank "
                    f"{other_rank} while rank {rank} ran "
                    f"{mine.describe()}"))
            if not mine.matches(other):
                raise self.fail(rank, (
                    "divergent collectives: rank "
                    f"{rank} called {mine.describe()} but rank "
                    f"{other_rank} called {other.describe()}"))
        self.status[rank] = f"after collective {fp.describe()}"

    def _sync(self, rank: int) -> None:
        try:
            self.barrier.wait(timeout=self.collective_timeout)
        except threading.BrokenBarrierError:
            if self.failure is not None:
                raise SanitizerError(
                    f"aborted by peer failure ({self.failure})") from None
            raise self.fail(rank, self.watchdog_report(rank)) from None

    # -- p2p write-epoch tracking ---------------------------------------------

    def _channel(self, key: tuple[int, int, int]) -> dict:
        return self.channels.setdefault(
            key, {"writes": 0, "reads": 0, "pending": deque()})

    def record_send(self, rank: int, dest: int, tag: int, obj,
                    site: str) -> None:
        self.threads[rank] = threading.get_ident()
        with self.lock:
            c = self._channel((rank, dest, tag))
            backlog = c["writes"] - c["reads"]
            if backlog > 0:
                other = next((p for p in c["pending"]
                              if p["site"] != site), None)
                if other is not None:
                    raise self.fail(rank, (
                        f"p2p write-epoch race on channel src={rank} "
                        f"dst={dest} tag={tag}: send at {site} (write "
                        f"epoch {c['writes'] + 1}) overlaps the "
                        f"undrained send at {other['site']} (write epoch "
                        f"{other['epoch']}, read epoch {c['reads']}) — "
                        "two call-sites race for one mailbox"))
            c["writes"] += 1
            c["pending"].append(
                {"epoch": c["writes"], "site": site, "stamp": _stamp(obj)})
        self.status[rank] = f"after p2p send to {dest} tag={tag} at {site}"

    def record_recv(self, rank: int, source: int, tag: int, obj,
                    site: str) -> None:
        with self.lock:
            c = self._channel((source, rank, tag))
            c["reads"] += 1
            if c["pending"]:
                ent = c["pending"].popleft()
                if ent["stamp"] != _stamp(obj):
                    raise self.fail(rank, (
                        f"crossed message on channel src={source} "
                        f"dst={rank} tag={tag}: recv at {site} got "
                        f"{_stamp(obj)} but the matching send at "
                        f"{ent['site']} (write epoch {ent['epoch']}) "
                        f"shipped {ent['stamp']}"))
        self.status[rank] = \
            f"after p2p recv from {source} tag={tag} at {site}"

    def undelivered(self, dst: int, source: int | None = None) -> list[str]:
        """Human-readable undrained messages addressed to ``dst``."""
        out = []
        with self.lock:
            for (src, d, tag), c in sorted(self.channels.items()):
                if d != dst or (source is not None and src != source):
                    continue
                for ent in c["pending"]:
                    out.append(
                        f"message from rank {src} on tag {tag} sent at "
                        f"{ent['site']} (write epoch {ent['epoch']}) is "
                        "still undelivered")
        return out

    def check_quiescent(self) -> None:
        """Raise unless every channel has been fully drained."""
        leaks = []
        with self.lock:
            for (src, dst, tag), c in sorted(self.channels.items()):
                if c["writes"] != c["reads"]:
                    sites = ", ".join(p["site"] for p in c["pending"])
                    leaks.append(
                        f"channel src={src} dst={dst} tag={tag}: "
                        f"{c['writes']} write(s) vs {c['reads']} read(s)"
                        + (f" (sent at {sites})" if sites else ""))
        if leaks:
            raise SanitizerError(
                "p2p channels not quiescent — orphaned messages:\n  "
                + "\n  ".join(leaks))

    # -- watchdog --------------------------------------------------------------

    def watchdog_report(self, rank: int, header: str | None = None) -> str:
        lines = [header or (
            "deadlock watchdog: a collective did not complete within "
            f"{self.collective_timeout}s (observed from rank {rank})")]
        for r in range(self.size):
            lines.append(f"  rank {r}: {self.status[r]}")
        for note in self.undelivered(rank):
            lines.append(f"  note: {note}")
        frames = sys._current_frames()
        for r, ident in sorted(self.threads.items()):
            frame = frames.get(ident)
            if frame is None or r == rank:
                continue
            tail = traceback.format_stack(frame)[-1].strip()
            lines.append(f"  rank {r} blocked at: " + tail.splitlines()[0])
        return "\n".join(lines)


class _SanitizedRecvRequest(Request):
    """Wraps a pending receive with a bounded wait and stamp check."""

    def __init__(self, comm: "SanitizerComm", source: int, tag: int,
                 inner: Request, site: str):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._inner = inner
        self._site = site
        self._done = False
        self._value = None

    def test(self) -> bool:
        if self._done:
            return True
        if self._inner.test():
            self._value = self._inner.wait()
            self._comm.state.record_recv(
                self._comm.rank, self._source, self._tag, self._value,
                self._site)
            self._done = True
        return self._done

    def wait(self):
        if self._done:
            return self._value
        state = self._comm.state
        deadline = time.monotonic() + self._comm.p2p_timeout
        state.status[self._comm.rank] = (
            f"in p2p irecv-wait from {self._source} tag={self._tag} "
            f"at {self._site}")
        while not self.test():
            if state.failure is not None:
                raise SanitizerError(
                    f"aborted by peer failure ({state.failure})")
            if time.monotonic() > deadline:
                raise state.fail(self._comm.rank, state.watchdog_report(
                    self._comm.rank,
                    header=(
                        "deadlock watchdog: irecv wait() from rank "
                        f"{self._source} tag={self._tag} at {self._site} "
                        f"exceeded {self._comm.p2p_timeout}s")))
            time.sleep(0.002)
        return self._value


class SanitizerComm(Communicator):
    """Transparent sanitizing wrapper around any communicator.

    Parameters
    ----------
    inner:
        The communicator to wrap (stack outermost, above instrumentation
        and resilience wrappers).
    state:
        The world's shared :class:`SanitizerState`.  Defaults to a fresh
        single-or-``inner.size``-rank state, which is correct only when
        this wrapper is the sole member (serial runs); multi-rank worlds
        must share one state across every rank's wrapper.
    p2p_timeout:
        Bound (seconds) on blocking receives and ``irecv`` waits.
    """

    def __init__(self, inner: Communicator,
                 state: SanitizerState | None = None,
                 p2p_timeout: float = DEFAULT_P2P_TIMEOUT_S):
        self.inner = inner
        self.state = state if state is not None \
            else SanitizerState(inner.size)
        if self.state.size != inner.size:
            raise CommunicationError(
                f"sanitizer state is sized for {self.state.size} rank(s) "
                f"but the wrapped communicator has {inner.size}")
        self.p2p_timeout = p2p_timeout

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    def __getattr__(self, name: str):
        # Transparency: expose whatever the wrapped stack offers (events,
        # world, tracer, ...) so accounting and rerouting stay reachable.
        return getattr(self.inner, name)

    def check_quiescent(self) -> None:
        """Assert every p2p mailbox this world touched is drained."""
        self.state.check_quiescent()

    # -- point to point --------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        site = _callsite()
        self.state.record_send(self.rank, dest, tag, obj, site)
        self.inner.send(obj, dest, tag)

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        site = _callsite()
        self.state.record_send(self.rank, dest, tag, obj, site)
        return self.inner.isend(obj, dest, tag)

    def recv(self, source: int, tag: int = 0,
             timeout: float | None = None):
        site = _callsite()
        state = self.state
        state.threads[self.rank] = threading.get_ident()
        state.status[self.rank] = \
            f"in p2p recv from {source} tag={tag} at {site}"
        bound = self.p2p_timeout if timeout is None else timeout
        try:
            try:
                obj = self.inner.recv(source, tag, timeout=bound)
            except TypeError:
                obj = self.inner.recv(source, tag)
        except SanitizerError:
            raise
        except CommunicationError as exc:
            if state.failure is not None:
                raise SanitizerError(
                    f"aborted by peer failure ({state.failure})") from exc
            raise state.fail(self.rank, state.watchdog_report(
                self.rank,
                header=(f"deadlock watchdog: recv from rank {source} "
                        f"tag={tag} at {site} failed ({exc})"))) from exc
        state.record_recv(self.rank, source, tag, obj, site)
        return obj

    def irecv(self, source: int, tag: int = 0) -> Request:
        site = _callsite()
        return _SanitizedRecvRequest(
            self, source, tag, self.inner.irecv(source, tag), site)

    # -- collectives -----------------------------------------------------------

    def allreduce(self, value, op: str = "sum"):
        dtype, shape = _stamp(value)
        self.state.check_collective(self.rank, CollectiveFingerprint(
            kind="allreduce", op=op, dtype=dtype, shape=shape, root=None,
            site=_callsite()))
        return self.inner.allreduce(value, op)

    def bcast(self, obj, root: int = 0):
        self.state.check_collective(self.rank, CollectiveFingerprint(
            kind="bcast", op=None, dtype=None, shape=None, root=root,
            site=_callsite()))
        return self.inner.bcast(obj, root)

    def gather(self, obj, root: int = 0):
        self.state.check_collective(self.rank, CollectiveFingerprint(
            kind="gather", op=None, dtype=None, shape=None, root=root,
            site=_callsite()))
        return self.inner.gather(obj, root)

    def allgather(self, obj) -> list:
        self.state.check_collective(self.rank, CollectiveFingerprint(
            kind="allgather", op=None, dtype=None, shape=None, root=None,
            site=_callsite()))
        return self.inner.allgather(obj)

    def barrier(self) -> None:
        self.state.check_collective(self.rank, CollectiveFingerprint(
            kind="barrier", op=None, dtype=None, shape=None, root=None,
            site=_callsite()))
        self.inner.barrier()
