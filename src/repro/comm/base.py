"""Communicator interface and reduction-operator registry."""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any, Callable

import numpy as np

from repro.utils.errors import CommunicationError

#: Reduction operators accepted by :meth:`Communicator.allreduce`.  Values are
#: binary callables applied left-to-right in rank order, which makes results
#: deterministic and identical on every rank.
REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
    "prod": lambda a, b: a * b,
}


def reduce_in_rank_order(values: list, op: str):
    """Fold ``values`` (indexed by rank) with ``op``, left to right."""
    try:
        fn = REDUCE_OPS[op]
    except KeyError:
        raise CommunicationError(
            f"unknown reduce op {op!r}; expected one of {sorted(REDUCE_OPS)}")
    acc = values[0]
    for v in values[1:]:
        acc = fn(acc, v)
    return acc


def isolate(obj):
    """Deep-copy a message payload so sender/receiver never alias memory.

    NumPy arrays take the fast path; everything else goes through
    ``copy.deepcopy`` (matching mpi4py's pickle-based object transport).
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return copy.deepcopy(obj)


def payload_bytes(obj) -> int:
    """Approximate wire size of a message payload, for instrumentation."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (int, float, complex, np.floating, np.integer)):
        return 8
    if isinstance(obj, (list, tuple)):
        return sum(payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_bytes(k) + payload_bytes(v) for k, v in obj.items())
    if isinstance(obj, (str, bytes)):
        return len(obj)
    return 8


class Request(ABC):
    """Handle for a non-blocking operation (mpi4py ``Request`` analogue)."""

    @abstractmethod
    def wait(self):
        """Block until complete; returns the received object for receives."""

    @abstractmethod
    def test(self) -> bool:
        """Non-blocking completion check."""


class CompletedRequest(Request):
    """A request that completed immediately (buffered sends)."""

    def __init__(self, value=None):
        self._value = value

    def wait(self):
        return self._value

    def test(self) -> bool:
        return True


class Communicator(ABC):
    """Minimal MPI-like communicator used throughout the library.

    Point-to-point ``send`` is non-blocking (buffered) and ``recv`` blocks,
    which keeps neighbour exchanges deadlock-free without requiring
    ``sendrecv`` choreography.  Collectives synchronise all ranks.
    """

    #: this rank's id in ``[0, size)``
    rank: int
    #: number of ranks in the world
    size: int

    # -- point to point ------------------------------------------------------

    @abstractmethod
    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Buffered send of ``obj`` to ``dest`` (payload is copied)."""

    @abstractmethod
    def recv(self, source: int, tag: int = 0):
        """Blocking receive of the next message from ``source`` with ``tag``."""

    def sendrecv(self, obj, dest: int, source: int, tag: int = 0):
        """Send to ``dest`` and receive from ``source`` on the same tag."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- non-blocking (default implementations; ThreadComm overrides irecv) ----

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; our sends are buffered, so this completes
        immediately (as a buffered MPI_Ibsend would)."""
        self.send(obj, dest, tag)
        return CompletedRequest()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive returning a :class:`Request`."""
        return CompletedRequest(self.recv(source, tag))

    # -- collectives ----------------------------------------------------------

    @abstractmethod
    def allreduce(self, value, op: str = "sum"):
        """Reduce ``value`` across ranks; every rank gets the same result."""

    @abstractmethod
    def bcast(self, obj, root: int = 0):
        """Broadcast ``obj`` from ``root``; returns the (copied) object."""

    @abstractmethod
    def gather(self, obj, root: int = 0):
        """Gather one object per rank; returns the list on ``root``, else None."""

    @abstractmethod
    def allgather(self, obj) -> list:
        """Gather one object per rank onto every rank."""

    @abstractmethod
    def barrier(self) -> None:
        """Synchronise all ranks."""

    # -- helpers ---------------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise CommunicationError(
                f"peer rank {peer} out of range [0,{self.size})")
        if peer == self.rank:
            raise CommunicationError("self-sends are not supported")
