"""Thread-backed SPMD world.

Each rank is an OS thread; rank code is written exactly as it would be with
mpi4py.  Messages travel through per-``(src, dst, tag)`` FIFO mailboxes, and
collectives synchronise on a generation-counter barrier with a shared slot
array (double-barrier discipline: deposit → barrier → read → barrier, so a
fast rank can never clobber slots a slow rank has not read yet).

Determinism: reductions fold contributions in rank order, so every rank sees
a bit-identical result regardless of thread scheduling — this is what makes
decomposed solves reproducible run-to-run.

Failure handling: when any rank raises, the world is *aborted* — blocked
collectives and pending receives raise :class:`CommunicationError` instead
of hanging forever.  :func:`repro.comm.spmd.launch_spmd` relies on this to
propagate the original error.

Abort is deliberately *lazy*: it only breaks operations that can never be
satisfied.  Mailbox deposits and barrier arrival counts are durable, so a
surviving rank keeps consuming messages its dead peer already sent and
keeps passing sync generations its peer already reached — it fails at the
first operation the peer genuinely never served.  That point is a function
of the peer's (deterministic) death position, not of how fast the abort
flag propagated, which is what makes a surviving rank's progress — and
therefore its guard/checkpoint state at death — reproducible run-to-run.
(``threading.Barrier.abort`` cannot provide this: a thread released by a
*successful* generation still raises ``BrokenBarrierError`` when the abort
lands before it drains.)
"""

from __future__ import annotations

import threading
from collections import deque

from repro.comm.base import (
    Communicator,
    Request,
    isolate,
    reduce_in_rank_order,
)
from repro.utils.errors import CommunicationError

#: How long a blocking receive waits between abort checks.
_POLL_S = 0.02
#: Receive timeout; exceeded only by deadlocked exchanges, so fail loudly.
_RECV_TIMEOUT_S = 120.0


class ThreadWorld:
    """Shared state for a world of ``size`` thread ranks.

    ``recv_timeout_s`` is the world-level deadlock guard: the default
    receive/collective wait bound when the caller passes no explicit
    per-operation timeout.  It used to be the hardcoded
    :data:`_RECV_TIMEOUT_S`; the deck key ``tl_comm_timeout`` / CLI
    ``--comm-timeout`` now reach it through
    :func:`~repro.comm.spmd.launch_spmd`.
    """

    def __init__(self, size: int, recv_timeout_s: float = _RECV_TIMEOUT_S):
        if size < 1:
            raise CommunicationError(f"world size must be >= 1, got {size}")
        if recv_timeout_s <= 0:
            raise CommunicationError(
                f"recv_timeout_s must be > 0, got {recv_timeout_s}")
        self.size = size
        self.recv_timeout_s = recv_timeout_s
        self._mailbox_lock = threading.Lock()
        self._mailboxes: dict[tuple[int, int, int], deque] = {}
        self._mailbox_cv = threading.Condition(self._mailbox_lock)
        self._sync_cv = threading.Condition()
        #: per-rank count of sync generations reached; durable, so a late
        #: rank can still observe that a now-dead peer did arrive.
        self._arrivals = [0] * size
        self._slots: list = [None] * size
        self._aborted = threading.Event()

    # -- lifecycle -------------------------------------------------------------

    def abort(self) -> None:
        """Break all pending synchronisation; called when a rank fails."""
        self._aborted.set()
        with self._sync_cv:
            self._sync_cv.notify_all()
        with self._mailbox_cv:
            self._mailbox_cv.notify_all()

    @property
    def aborted(self) -> bool:
        return self._aborted.is_set()

    def comm(self, rank: int) -> "ThreadComm":
        if not 0 <= rank < self.size:
            raise CommunicationError(f"rank {rank} out of range [0,{self.size})")
        return ThreadComm(self, rank)

    # -- internals ---------------------------------------------------------------

    def _deposit(self, src: int, dst: int, tag: int, obj) -> None:
        with self._mailbox_cv:
            self._mailboxes.setdefault((src, dst, tag), deque()).append(obj)
            self._mailbox_cv.notify_all()

    def _collect(self, src: int, dst: int, tag: int,
                 timeout: float | None = None):
        key = (src, dst, tag)
        deadline = self.recv_timeout_s if timeout is None else timeout
        why = ("probable deadlock" if timeout is None
               else "dead peer or dropped message")
        with self._mailbox_cv:
            while True:
                box = self._mailboxes.get(key)
                if box:
                    return box.popleft()
                if self._aborted.is_set():
                    raise CommunicationError(
                        f"world aborted while rank {dst} awaited "
                        f"(src={src}, tag={tag})")
                if deadline <= 0:
                    raise CommunicationError(
                        f"receive timeout after "
                        f"{self.recv_timeout_s if timeout is None else timeout}s: "
                        f"rank {dst} awaiting src={src} tag={tag} — {why}")
                self._mailbox_cv.wait(_POLL_S)
                deadline -= _POLL_S

    def _sync(self, rank: int) -> None:
        """Block until every rank has arrived at this sync generation.

        A generation *completes* once all ranks' arrival counts reach it,
        and completion is checked before the abort flag — so a rank whose
        peers all arrived before the world aborted still passes, exactly
        as it would have under any other scheduling.  Only a generation
        the dead rank never reached raises.
        """
        with self._sync_cv:
            self._arrivals[rank] += 1
            gen = self._arrivals[rank]
            self._sync_cv.notify_all()
            deadline = self.recv_timeout_s
            while True:
                if all(a >= gen for a in self._arrivals):
                    return
                if self._aborted.is_set():
                    raise CommunicationError(
                        "world aborted during a collective")
                if deadline <= 0:
                    raise CommunicationError(
                        f"collective timeout after {self.recv_timeout_s}s: "
                        f"rank {rank} at sync generation {gen} — "
                        f"probable deadlock")
                self._sync_cv.wait(_POLL_S)
                deadline -= _POLL_S


class _MailboxRequest(Request):
    """Pending receive against a world mailbox."""

    def __init__(self, world: ThreadWorld, src: int, dst: int, tag: int):
        self._world = world
        self._key = (src, dst, tag)
        self._value = None
        self._done = False

    def test(self) -> bool:
        if self._done:
            return True
        with self._world._mailbox_cv:
            box = self._world._mailboxes.get(self._key)
            if box:
                self._value = box.popleft()
                self._done = True
        return self._done

    def wait(self):
        if not self._done:
            self._value = self._world._collect(*self._key)
            self._done = True
        return self._value


class ThreadComm(Communicator):
    """One rank's endpoint into a :class:`ThreadWorld`."""

    def __init__(self, world: ThreadWorld, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.size

    # -- point to point ---------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._check_peer(dest)
        self.world._deposit(self.rank, dest, tag, isolate(obj))

    def recv(self, source: int, tag: int = 0,
             timeout: float | None = None):
        """Blocking receive; ``timeout`` (seconds) bounds the wait.

        Default ``None`` keeps the long global deadlock guard for
        back-compat; an explicit timeout raises
        :class:`CommunicationError` once exceeded, so a dead peer fails
        loudly instead of hanging the rank forever.  Used by
        :class:`~repro.resilience.retry.RetryingComm`.
        """
        self._check_peer(source)
        return self.world._collect(source, self.rank, tag, timeout=timeout)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Truly non-blocking receive: returns a pollable request."""
        self._check_peer(source)
        return _MailboxRequest(self.world, source, self.rank, tag)

    # -- collectives --------------------------------------------------------------

    def _exchange_slots(self, value):
        """Deposit into the slot array and return everyone's contributions."""
        w = self.world
        w._slots[self.rank] = value
        w._sync(self.rank)
        values = list(w._slots)
        w._sync(self.rank)
        return values

    def allreduce(self, value, op: str = "sum"):
        if self.size == 1:
            return reduce_in_rank_order([value], op)
        values = self._exchange_slots(value)
        return reduce_in_rank_order(values, op)

    def bcast(self, obj, root: int = 0):
        self._check_root(root)
        if self.size == 1:
            return obj
        values = self._exchange_slots(obj if self.rank == root else None)
        return values[root] if self.rank == root else isolate(values[root])

    def gather(self, obj, root: int = 0):
        self._check_root(root)
        values = self._exchange_slots(obj)
        if self.rank != root:
            return None
        return [v if r == self.rank else isolate(v)
                for r, v in enumerate(values)]

    def allgather(self, obj) -> list:
        values = self._exchange_slots(obj)
        return [isolate(v) for v in values]

    def barrier(self) -> None:
        if self.size > 1:
            self.world._sync(self.rank)

    # -- helpers ---------------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicationError(
                f"root {root} out of range [0,{self.size})")
