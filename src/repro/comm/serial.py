"""The trivial single-rank communicator.

Serial runs are the correctness reference: every distributed configuration is
tested against the same solve on a :class:`SerialComm` world.
"""

from __future__ import annotations

from repro.comm.base import Communicator, isolate, reduce_in_rank_order
from repro.utils.errors import CommunicationError


class SerialComm(Communicator):
    """A world of exactly one rank; collectives are identities."""

    rank = 0
    size = 1

    def send(self, obj, dest: int, tag: int = 0) -> None:
        raise CommunicationError("SerialComm has no peers to send to")

    def recv(self, source: int, tag: int = 0):
        raise CommunicationError("SerialComm has no peers to receive from")

    def allreduce(self, value, op: str = "sum"):
        return reduce_in_rank_order([value], op)

    def bcast(self, obj, root: int = 0):
        self._check_root(root)
        return obj

    def gather(self, obj, root: int = 0):
        self._check_root(root)
        return [obj]

    def allgather(self, obj) -> list:
        return [isolate(obj)]

    def barrier(self) -> None:
        return None

    @staticmethod
    def _check_root(root: int) -> None:
        if root != 0:
            raise CommunicationError(f"root {root} invalid for world of size 1")
