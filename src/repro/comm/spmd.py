"""Run one function per rank over a :class:`ThreadWorld` and collect results.

This is the ``mpiexec`` of the in-process world: it spawns ``size`` threads,
hands each a communicator, joins them, and re-raises the first rank failure
(after aborting the world so no surviving rank deadlocks in a barrier or
receive).
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.comm.serial import SerialComm
from repro.comm.threaded import ThreadWorld
from repro.utils.errors import CommunicationError


def launch_spmd(
    fn: Callable,
    size: int,
    rank_args: Sequence[tuple] | None = None,
    recv_timeout: float | None = None,
) -> list:
    """Execute ``fn(comm, *args)`` on every rank of a ``size``-rank world.

    Parameters
    ----------
    fn:
        The rank program.  Its first argument is the communicator; any extra
        positional arguments come from ``rank_args[rank]``.
    size:
        World size.  ``size == 1`` runs inline on a :class:`SerialComm`
        (no thread is spawned), which keeps serial reference runs cheap and
        debuggable.
    rank_args:
        Optional per-rank argument tuples (length ``size``).
    recv_timeout:
        World-level deadlock-guard timeout in seconds (``None`` keeps the
        :data:`~repro.comm.threaded._RECV_TIMEOUT_S` default).  This is
        the ``tl_comm_timeout`` deck knob's landing point.

    Returns
    -------
    list
        ``fn``'s return value per rank, indexed by rank.
    """
    if rank_args is None:
        rank_args = [()] * size
    if len(rank_args) != size:
        raise CommunicationError(
            f"rank_args has {len(rank_args)} entries for world size {size}")

    if size == 1:
        return [fn(SerialComm(), *rank_args[0])]

    world = (ThreadWorld(size) if recv_timeout is None
             else ThreadWorld(size, recv_timeout_s=recv_timeout))
    results: list = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = world.comm(rank)
        try:
            results[rank] = fn(comm, *rank_args[rank])
        except BaseException as exc:  # noqa: BLE001 - must abort peers
            with failures_lock:
                failures.append((rank, exc))
            world.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        failures.sort(key=lambda f: f[0])
        rank, exc = failures[0]
        # Prefer the original error over secondary abort fallout.
        primary = next(
            ((r, e) for r, e in failures if not isinstance(e, CommunicationError)),
            (rank, exc),
        )
        rank, exc = primary
        raise type(exc)(f"[rank {rank}] {exc}") from exc
    return results
