"""Transparent communicator wrapper that accounts traffic.

The performance model needs to know, per solve, how many point-to-point
messages, bytes and global reductions each configuration generates.  Wrapping
any :class:`~repro.comm.base.Communicator` in :class:`InstrumentedComm`
records those into an :class:`~repro.utils.events.EventLog` without changing
behaviour, so the same solver code runs instrumented or not.
"""

from __future__ import annotations

from repro.comm.base import Communicator, payload_bytes
from repro.utils.events import EventLog


class InstrumentedComm(Communicator):
    """Delegates to an inner communicator while counting traffic.

    Recorded events (kind, key):

    - ``("p2p_send", tag)`` with ``bytes``
    - ``("p2p_recv", tag)`` with ``bytes``
    - ``("allreduce", op)`` with ``bytes`` (per-rank contribution size)
    - ``("bcast", None)``, ``("gather", None)``, ``("allgather", None)``,
      ``("barrier", None)``
    """

    def __init__(self, inner: Communicator, events: EventLog | None = None):
        self.inner = inner
        self.events = events if events is not None else EventLog()

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    # -- point to point -----------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self.events.record("p2p_send", tag, bytes=payload_bytes(obj))
        self.inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0):
        obj = self.inner.recv(source, tag)
        self.events.record("p2p_recv", tag, bytes=payload_bytes(obj))
        return obj

    # -- collectives -----------------------------------------------------------------

    def allreduce(self, value, op: str = "sum"):
        self.events.record("allreduce", op, bytes=payload_bytes(value))
        return self.inner.allreduce(value, op)

    def bcast(self, obj, root: int = 0):
        self.events.record("bcast", None, bytes=payload_bytes(obj))
        return self.inner.bcast(obj, root)

    def gather(self, obj, root: int = 0):
        self.events.record("gather", None, bytes=payload_bytes(obj))
        return self.inner.gather(obj, root)

    def allgather(self, obj) -> list:
        self.events.record("allgather", None, bytes=payload_bytes(obj))
        return self.inner.allgather(obj)

    def barrier(self) -> None:
        self.events.record("barrier", None)
        self.inner.barrier()
