"""Transparent communicator wrapper that accounts traffic.

The performance model needs to know, per solve, how many point-to-point
messages, bytes and global reductions each configuration generates.  Wrapping
any :class:`~repro.comm.base.Communicator` in :class:`InstrumentedComm`
records those into an :class:`~repro.utils.events.EventLog` without changing
behaviour, so the same solver code runs instrumented or not.
"""

from __future__ import annotations

from collections import Counter

from repro.comm.base import Communicator, payload_bytes
from repro.utils.events import RECOVERY_KIND, EventLog

#: Event kind recorded (by :class:`~repro.resilience.retry.RetryingComm`)
#: for every *re-issued* communication attempt.  Retries are accounted
#: separately from the logical operation counts: with the canonical stack
#: ``InstrumentedComm(RetryingComm(FaultyComm(base)))`` the instrument
#: layer sees each operation exactly once no matter how many times the
#: retry layer re-issues it, so ``count_kind("allreduce")`` etc. remain
#: *first-attempt* counts and the COMM_CONTRACT verifier is unaffected by
#: legal retries.  Query retries with ``count_kind(RETRY_KIND)`` or
#: :meth:`EventWindow.retry_count`.
RETRY_KIND = "comm_retry"

__all__ = ["RETRY_KIND", "RECOVERY_KIND", "EventWindow", "InstrumentedComm"]


class EventWindow:
    """Delta view over an :class:`EventLog` between two instants.

    Opening a window snapshots the log's counters; every query then
    reports only what was recorded *since* — closing (or leaving the
    ``with`` block) freezes the deltas.  This is how the contract verifier
    (:mod:`repro.analysis.verify`) isolates per-iteration communication
    from setup cost: wrap each solve in a window and difference two runs
    of different iteration counts.

    >>> with EventWindow(comm.events) as w:
    ...     cg_solve(op, b, max_iters=10)
    >>> w.count_kind("allreduce")   # events during the window only
    """

    def __init__(self, log: EventLog):
        self.log = log
        self._start_counts = Counter(log.counts)
        self._start_quantities = {
            bucket: Counter(q) for bucket, q in log.quantities.items()}
        self._end_counts: Counter | None = None
        self._end_quantities: dict | None = None

    def close(self) -> "EventWindow":
        """Freeze the window (idempotent); returns self."""
        if self._end_counts is None:
            self._end_counts = Counter(self.log.counts)
            self._end_quantities = {
                bucket: Counter(q) for bucket, q in self.log.quantities.items()}
        return self

    def __enter__(self) -> "EventWindow":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- delta queries (EventLog-shaped) ----------------------------------------

    def _counts(self) -> Counter:
        end = self._end_counts if self._end_counts is not None \
            else self.log.counts
        return {bucket: n - self._start_counts.get(bucket, 0)
                for bucket, n in end.items()
                if n - self._start_counts.get(bucket, 0)}

    def count(self, kind: str, key=None) -> int:
        return self._counts().get((kind, key), 0)

    def count_kind(self, kind: str) -> int:
        return sum(n for (k, _key), n in self._counts().items() if k == kind)

    def total(self, kind: str, amount: str, key=None) -> float:
        end = self._end_quantities if self._end_quantities is not None \
            else self.log.quantities
        out = 0.0
        for bucket, q in end.items():
            if bucket[0] != kind or (key is not None and bucket[1] != key):
                continue
            start = self._start_quantities.get(bucket, {})
            out += q.get(amount, 0.0) - start.get(amount, 0.0)
        return out

    def retry_count(self, op: str | None = None) -> int:
        """Re-issued attempts recorded during the window (see RETRY_KIND)."""
        if op is None:
            return self.count_kind(RETRY_KIND)
        return self.count(RETRY_KIND, op)

    def recovery_count(self, kind: str | None = None) -> int:
        """Events rerouted into the recovery bucket during the window.

        Recovery-scope work (checkpoint collectives, failure votes, halo
        refreshes, ABFT replays — see
        :func:`repro.utils.events.recovery_scope`) is bucketed under
        ``(RECOVERY_KIND, original_kind)``, keeping the regular per-kind
        counts first-attempt clean just like retries.
        """
        if kind is None:
            return self.count_kind(RECOVERY_KIND)
        return self.count(RECOVERY_KIND, kind)

    def as_log(self) -> EventLog:
        """The window's deltas materialised as a standalone EventLog."""
        log = EventLog()
        for bucket, n in self._counts().items():
            log.counts[bucket] = n
        return log


class InstrumentedComm(Communicator):
    """Delegates to an inner communicator while counting traffic.

    Recorded events (kind, key):

    - ``("p2p_send", tag)`` with ``bytes``
    - ``("p2p_recv", tag)`` with ``bytes``
    - ``("allreduce", op)`` with ``bytes`` (per-rank contribution size)
    - ``("bcast", None)``, ``("gather", None)``, ``("allgather", None)``,
      ``("barrier", None)``

    A :class:`~repro.observe.trace.Tracer` may be attached to additionally
    emit one timed span per operation (names mirror the event kinds).  With
    the default null tracer the span calls are no-ops that allocate nothing.
    """

    def __init__(self, inner: Communicator, events: EventLog | None = None,
                 tracer=None):
        self.inner = inner
        self.events = events if events is not None else EventLog()
        if tracer is None:
            # Deferred import: repro.observe.hooks imports repro.comm.base,
            # and this module is pulled in by repro.comm's package init.
            from repro.observe.trace import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer

    def window(self) -> EventWindow:
        """Open an :class:`EventWindow` over this communicator's log."""
        return EventWindow(self.events)

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    # -- point to point -----------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self.events.record("p2p_send", tag, bytes=payload_bytes(obj))
        with self.tracer.span("p2p_send", tag):
            self.inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0,
             timeout: float | None = None):
        with self.tracer.span("p2p_recv", tag):
            if timeout is None:
                obj = self.inner.recv(source, tag)
            else:
                obj = self.inner.recv(source, tag, timeout=timeout)
        self.events.record("p2p_recv", tag, bytes=payload_bytes(obj))
        return obj

    # -- collectives -----------------------------------------------------------------

    def allreduce(self, value, op: str = "sum"):
        self.events.record("allreduce", op, bytes=payload_bytes(value))
        with self.tracer.span("allreduce", op):
            return self.inner.allreduce(value, op)

    def bcast(self, obj, root: int = 0):
        self.events.record("bcast", None, bytes=payload_bytes(obj))
        with self.tracer.span("bcast"):
            return self.inner.bcast(obj, root)

    def gather(self, obj, root: int = 0):
        self.events.record("gather", None, bytes=payload_bytes(obj))
        with self.tracer.span("gather"):
            return self.inner.gather(obj, root)

    def allgather(self, obj) -> list:
        self.events.record("allgather", None, bytes=payload_bytes(obj))
        with self.tracer.span("allgather"):
            return self.inner.allgather(obj)

    def barrier(self) -> None:
        self.events.record("barrier", None)
        with self.tracer.span("barrier"):
            self.inner.barrier()
