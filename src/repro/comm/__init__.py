"""SPMD communication substrate.

The paper runs TeaLeaf over MPI on up to 8192 nodes.  mpi4py is unavailable
in this environment, so this package provides an in-process stand-in with an
mpi4py-flavoured API:

- :class:`SerialComm` — the trivial single-rank world;
- :class:`ThreadComm` / :class:`ThreadWorld` — a real SPMD world where each
  rank is a Python thread; point-to-point messages go through matched FIFO
  mailboxes and collectives synchronise on barriers, so every distributed
  algorithm (halo exchange at any depth, reduction placement, matrix powers)
  executes genuinely decomposed;
- :class:`InstrumentedComm` — a transparent wrapper counting messages, bytes
  and reductions into an :class:`~repro.utils.events.EventLog`, feeding the
  performance model;
- :func:`launch_spmd` — run one function per rank and collect results,
  propagating failures without deadlocking survivors;
- :class:`SanitizerComm` / :class:`SanitizerState` — a runtime SPMD
  sanitizer wrapper that turns divergent collectives, point-to-point
  races and deadlocks into structured
  :class:`~repro.utils.errors.SanitizerError` reports naming the
  offending call-sites.
"""

from repro.comm.base import Communicator, REDUCE_OPS
from repro.comm.serial import SerialComm
from repro.comm.threaded import ThreadComm, ThreadWorld
from repro.comm.instrument import (RECOVERY_KIND, RETRY_KIND, EventWindow,
                                   InstrumentedComm)
from repro.comm.sanitize import SanitizerComm, SanitizerState
from repro.comm.spmd import launch_spmd
from repro.utils.errors import SanitizerError

__all__ = [
    "Communicator",
    "REDUCE_OPS",
    "RECOVERY_KIND",
    "RETRY_KIND",
    "SanitizerComm",
    "SanitizerError",
    "SanitizerState",
    "SerialComm",
    "ThreadComm",
    "ThreadWorld",
    "EventWindow",
    "InstrumentedComm",
    "launch_spmd",
]
