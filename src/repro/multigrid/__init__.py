"""Geometric multigrid: the paper's third-party-solver baseline, rebuilt.

The paper benchmarks TeaLeaf's solvers against PETSc's CG preconditioned by
Hypre's BoomerAMG.  Neither library is available here, so this package
implements the closest in-spirit substitute on the structured grid: a
geometric multigrid V-cycle (Galerkin-coarsened coefficients, piecewise
constant transfers, weighted-Jacobi smoothing, direct coarse solve) used as
a CG preconditioner ("MG-CG").

The substitution preserves what the evaluation actually measures: MG-CG
converges in very few outer iterations (best-in-class at low node counts)
but each cycle traverses every level — the per-level halo exchanges and
tiny coarse-grid messages are what makes the baseline's strong scaling
collapse beyond ~32 nodes in Fig. 7, and the performance model charges it
for exactly those.
"""

from repro.multigrid.levels import Level, build_hierarchy, level_matvec
from repro.multigrid.transfer import restrict_full_weighting, prolong_constant
from repro.multigrid.smoothers import chebyshev_smooth, jacobi_smooth
from repro.multigrid.vcycle import MultigridHierarchy, v_cycle
from repro.multigrid.mgcg import MultigridPreconditioner, mgcg_solve, multigrid_solve
from repro.multigrid.distributed import (
    DistributedMultigrid,
    DistributedMultigridPreconditioner,
    dmgcg_solve,
)

__all__ = [
    "Level",
    "build_hierarchy",
    "level_matvec",
    "restrict_full_weighting",
    "prolong_constant",
    "jacobi_smooth",
    "chebyshev_smooth",
    "MultigridHierarchy",
    "v_cycle",
    "MultigridPreconditioner",
    "mgcg_solve",
    "multigrid_solve",
    "DistributedMultigrid",
    "DistributedMultigridPreconditioner",
    "dmgcg_solve",
]
