"""Multigrid levels: coefficient coarsening and the per-level operator.

Levels store *global* face-coefficient arrays in the same convention as
:func:`repro.physics.conduction.face_coefficients` (``kx``: ``(ny, nx+1)``,
``ky``: ``(ny+1, nx)``, boundary faces zero).  Coarsening is Galerkin with
piecewise-constant interpolation, which for this 5-point FV operator reduces
to summing the two fine faces crossing each coarse face and dividing by 4 —
the coarse operator is again ``I + D`` in the same normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ConfigurationError


@dataclass
class Level:
    """One multigrid level's operator data."""

    kx: np.ndarray  # (ny, nx+1)
    ky: np.ndarray  # (ny+1, nx)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.kx.shape[0], self.kx.shape[1] - 1)

    @property
    def n_cells(self) -> int:
        ny, nx = self.shape
        return ny * nx

    def diagonal(self) -> np.ndarray:
        return (1.0 + self.kx[:, :-1] + self.kx[:, 1:]
                + self.ky[:-1, :] + self.ky[1:, :])


def level_matvec(level: Level, u: np.ndarray, out: np.ndarray | None = None
                 ) -> np.ndarray:
    """``out = A u`` on a level (global arrays, zero boundary faces)."""
    kx, ky = level.kx, level.ky
    if out is None:
        out = np.empty_like(u)
    np.multiply(level.diagonal(), u, out=out)
    out[:, 1:] -= kx[:, 1:-1] * u[:, :-1]
    out[:, :-1] -= kx[:, 1:-1] * u[:, 1:]
    out[1:, :] -= ky[1:-1, :] * u[:-1, :]
    out[:-1, :] -= ky[1:-1, :] * u[1:, :]
    return out


def coarsen_level(level: Level) -> Level:
    """Galerkin-coarsen a level (both dimensions must be even)."""
    ny, nx = level.shape
    if ny % 2 or nx % 2:
        raise ConfigurationError(
            f"cannot coarsen odd-sized level {ny}x{nx}")
    kx, ky = level.kx, level.ky
    # Coarse x-face (K, J) aggregates fine faces (2K, 2J) and (2K+1, 2J).
    kxc = 0.25 * (kx[0::2, 0::2] + kx[1::2, 0::2])
    kyc = 0.25 * (ky[0::2, 0::2] + ky[0::2, 1::2])
    return Level(kx=kxc, ky=kyc)


def build_hierarchy(kx: np.ndarray, ky: np.ndarray,
                    min_size: int = 4, max_levels: int = 32) -> list[Level]:
    """Build the level list, finest first.

    Coarsening stops when either dimension becomes odd or drops below
    ``min_size`` — the coarsest level is then solved directly.
    """
    ny, nxp1 = kx.shape
    if ky.shape != (ny + 1, nxp1 - 1):
        raise ConfigurationError(
            f"inconsistent face array shapes {kx.shape} / {ky.shape}")
    levels = [Level(kx=np.asarray(kx, dtype=np.float64),
                    ky=np.asarray(ky, dtype=np.float64))]
    while len(levels) < max_levels:
        ny, nx = levels[-1].shape
        if ny % 2 or nx % 2 or min(ny, nx) // 2 < min_size:
            break
        levels.append(coarsen_level(levels[-1]))
    return levels
