"""The V-cycle.

Setup builds the level hierarchy once (including the sparse factorisation of
the coarsest operator); each cycle then performs pre-smoothing, restriction,
recursion, prolongation and post-smoothing.  Setup cost vs per-cycle cost is
tracked because the paper calls out AMG's "high set up costs" as part of why
it loses at scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.multigrid.levels import Level, build_hierarchy, level_matvec
from repro.multigrid.smoothers import chebyshev_smooth, jacobi_smooth
from repro.multigrid.transfer import prolong_constant, restrict_full_weighting
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive


def _assemble_level(level: Level) -> sp.csr_matrix:
    """Explicit sparse matrix of a level (coarse solve only)."""
    ny, nx = level.shape
    n = ny * nx
    diag = level.diagonal().ravel()
    A = sp.lil_matrix((n, n))
    A.setdiag(diag)
    kx, ky = level.kx, level.ky
    for k in range(ny):
        for j in range(nx):
            row = k * nx + j
            if j > 0 and kx[k, j]:
                A[row, row - 1] = -kx[k, j]
            if j < nx - 1 and kx[k, j + 1]:
                A[row, row + 1] = -kx[k, j + 1]
            if k > 0 and ky[k, j]:
                A[row, row - nx] = -ky[k, j]
            if k < ny - 1 and ky[k + 1, j]:
                A[row, row + nx] = -ky[k + 1, j]
    return A.tocsr()


@dataclass
class MultigridHierarchy:
    """Built hierarchy plus smoothing configuration."""

    levels: list[Level]
    pre_sweeps: int = 2
    post_sweeps: int = 2
    omega: float = 0.8
    smoother: str = "jacobi"   # "jacobi" | "chebyshev" (paper §VIII)

    def __post_init__(self):
        if not self.levels:
            raise ConfigurationError("hierarchy needs at least one level")
        check_positive("pre_sweeps", self.pre_sweeps)
        check_positive("post_sweeps", self.post_sweeps)
        if self.smoother not in ("jacobi", "chebyshev"):
            raise ConfigurationError(
                f"unknown smoother {self.smoother!r}; "
                "expected jacobi|chebyshev")
        self._coarse_lu = spla.splu(
            _assemble_level(self.levels[-1]).tocsc())

    @classmethod
    def build(cls, kx: np.ndarray, ky: np.ndarray,
              pre_sweeps: int = 2, post_sweeps: int = 2,
              omega: float = 0.8, min_size: int = 4,
              smoother: str = "jacobi") -> "MultigridHierarchy":
        return cls(levels=build_hierarchy(kx, ky, min_size=min_size),
                   pre_sweeps=pre_sweeps, post_sweeps=post_sweeps,
                   omega=omega, smoother=smoother)

    def _smooth(self, level: Level, x: np.ndarray, b: np.ndarray,
                sweeps: int) -> None:
        if self.smoother == "chebyshev":
            chebyshev_smooth(level, x, b, sweeps=sweeps)
        else:
            jacobi_smooth(level, x, b, sweeps=sweeps, omega=self.omega)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def coarse_solve(self, b: np.ndarray) -> np.ndarray:
        shape = self.levels[-1].shape
        return self._coarse_lu.solve(b.ravel()).reshape(shape)

    def cycle(self, b: np.ndarray, x: np.ndarray | None = None) -> np.ndarray:
        """One V-cycle for ``A x = b`` on the finest level."""
        if x is None:
            x = np.zeros_like(b)
        return self._cycle(0, x, b)

    def _cycle(self, li: int, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        level = self.levels[li]
        if li == self.n_levels - 1:
            return self.coarse_solve(b)
        self._smooth(level, x, b, self.pre_sweeps)
        residual = b - level_matvec(level, x)
        coarse_b = restrict_full_weighting(residual)
        coarse_x = self._cycle(li + 1, np.zeros_like(coarse_b), coarse_b)
        x += prolong_constant(coarse_x)
        self._smooth(level, x, b, self.post_sweeps)
        return x


def v_cycle(hierarchy: MultigridHierarchy, b: np.ndarray,
            x: np.ndarray | None = None) -> np.ndarray:
    """Functional wrapper around :meth:`MultigridHierarchy.cycle`."""
    return hierarchy.cycle(b, x)
