"""MG-CG: conjugate gradients preconditioned by one V-cycle.

This is the library's stand-in for the paper's "PETSc CG + BoomerAMG"
baseline.  It runs on the global grid (serial communicator): the baseline's
*convergence behaviour* is measured from real solves here, while its
*distributed cost* at scale is charged by the performance model (per-level
exchanges and coarse-grid serialisation), mirroring how the paper treats it
as an opaque third-party solver.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.field import Field
from repro.multigrid.vcycle import MultigridHierarchy
from repro.solvers.cg import cg_solve
from repro.solvers.operator import StencilOperator2D
from repro.solvers.preconditioners import Preconditioner
from repro.solvers.result import SolveResult
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive


def _global_faces(op: StencilOperator2D) -> tuple[np.ndarray, np.ndarray]:
    """Extract the global face arrays from a serial operator's padded fields."""
    t, h = op.tile, op.halo
    kx = op.kx.data[h:h + t.ny, h:h + t.nx + 1].copy()
    ky = op.ky.data[h:h + t.ny + 1, h:h + t.nx].copy()
    return kx, ky


class MultigridPreconditioner(Preconditioner):
    """``z = V-cycle(r)``: one symmetric V-cycle per application."""

    name = "multigrid"
    communication_free = False

    def __init__(self, op: StencilOperator2D,
                 pre_sweeps: int = 2, post_sweeps: int = 2,
                 omega: float = 0.8, min_size: int = 4,
                 smoother: str = "jacobi"):
        if op.comm.size != 1:
            raise ConfigurationError(
                "MG-CG runs on the global grid (serial communicator); its "
                "distributed cost is modelled by repro.perfmodel")
        self.op = op
        kx, ky = _global_faces(op)
        self.hierarchy = MultigridHierarchy.build(
            kx, ky, pre_sweeps=pre_sweeps, post_sweeps=post_sweeps,
            omega=omega, min_size=min_size, smoother=smoother)

    def apply(self, r: Field, z: Field) -> None:
        z.interior = self.hierarchy.cycle(r.interior.copy())


def mgcg_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 1_000,
    pre_sweeps: int = 2,
    post_sweeps: int = 2,
    omega: float = 0.8,
    smoother: str = "jacobi",
) -> SolveResult:
    """Solve ``A x = b`` with V-cycle-preconditioned CG."""
    M = MultigridPreconditioner(op, pre_sweeps=pre_sweeps,
                                post_sweeps=post_sweeps, omega=omega,
                                smoother=smoother)
    result = cg_solve(op, b, x0, eps=eps, max_iters=max_iters,
                      preconditioner=M, solver_name="mgcg")
    result.n_levels = M.hierarchy.n_levels
    return result


def multigrid_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 200,
) -> SolveResult:
    """Standalone multigrid: V-cycles iterated to tolerance (no CG)."""
    check_positive("max_iters", max_iters)
    M = MultigridPreconditioner(op)
    x = x0.copy() if x0 is not None else op.new_field()
    r = op.new_field()
    op.residual(b, x, out=r)
    r0_norm = float(np.sqrt(op.dot(r, r)))
    threshold = eps * r0_norm
    history = [r0_norm]
    res_norm = r0_norm
    converged = r0_norm <= threshold
    iterations = 0
    while not converged and iterations < max_iters:
        x.interior += M.hierarchy.cycle(r.interior.copy())
        op.residual(b, x, out=r)
        res_norm = float(np.sqrt(op.dot(r, r)))
        iterations += 1
        history.append(res_norm)
        converged = res_norm <= threshold
    result = SolveResult(
        x=x, solver="multigrid", converged=converged, iterations=iterations,
        residual_norm=res_norm, initial_residual_norm=r0_norm,
        history=history, events=op.events)
    result.n_levels = M.hierarchy.n_levels
    return result
