"""Distributed multigrid via local coarsening + agglomeration.

The paper's §VII roadmap: "we intend to explore combining the favorable
aspects of both domain decomposition and agglomeration multi-grid
methods".  This module implements exactly that hybrid:

1. **Domain-decomposed levels** — while every rank's tile has even
   dimensions, the V-cycle coarsens *in place*: each level owns
   rank-local Galerkin-coarsened coefficients, smoothing sweeps perform
   ordinary depth-1 halo exchanges, and restriction/prolongation are
   purely local 2x2 block operations (no communication at all).
2. **Agglomeration** — once tiles cannot halve further, the remaining
   coarse problem is gathered onto rank 0, solved exactly (sparse direct
   factorisation, prepared once at setup), and the correction broadcast
   back.

The resulting V-cycle is a fixed SPD linear operation, so it serves as a
CG preconditioner on any communicator — giving the BoomerAMG-baseline
path a genuinely distributed implementation to complement the serial one
in :mod:`repro.multigrid.mgcg`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.mesh.decomposition import Tile
from repro.mesh.field import Field
from repro.multigrid.levels import Level
from repro.multigrid.vcycle import _assemble_level
from repro.solvers.cg import cg_solve
from repro.solvers.operator import StencilOperator2D
from repro.solvers.preconditioners import Preconditioner
from repro.solvers.result import SolveResult
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive


def _coarse_tile(tile: Tile, factor: int) -> Tile:
    """The tile's footprint on a grid coarsened by ``factor``."""
    return Tile(rank=tile.rank, cx=tile.cx, cy=tile.cy,
                px=tile.px, py=tile.py,
                x0=tile.x0 // factor, x1=tile.x1 // factor,
                y0=tile.y0 // factor, y1=tile.y1 // factor)


def _coarsen_operator(op: StencilOperator2D) -> StencilOperator2D:
    """Galerkin-coarsen a rank-local operator (local dims must be even)."""
    t, h = op.tile, op.halo
    if t.nx % 2 or t.ny % 2:
        raise ConfigurationError(
            f"cannot coarsen odd local tile {t.shape}")
    ct = _coarse_tile(t, 2)
    kxc = Field(ct, 1)
    kyc = Field(ct, 1)
    # Fine faces live on the padded arrays; local interior window:
    fkx = op.kx.data[h:h + t.ny, h:h + t.nx + 1]
    fky = op.ky.data[h:h + t.ny + 1, h:h + t.nx]
    kxc.data[1:1 + ct.ny, 1:1 + ct.nx + 1] = \
        0.25 * (fkx[0::2, 0::2] + fkx[1::2, 0::2])
    kyc.data[1:1 + ct.ny + 1, 1:1 + ct.nx] = \
        0.25 * (fky[0::2, 0::2] + fky[0::2, 1::2])
    coarse = StencilOperator2D(kx=kxc, ky=kyc, comm=op.comm,
                               events=op.events)
    # Coefficients straddling rank boundaries live in the halo; refresh.
    coarse.exchanger.exchange([coarse.kx, coarse.ky], depth=1)
    return coarse


def _local_levels(tile: Tile, min_local: int, max_levels: int) -> int:
    """How many times this tile can halve (>= min_local cells per side)."""
    n = 0
    nx, ny = tile.nx, tile.ny
    while (n < max_levels and nx % 2 == 0 and ny % 2 == 0
           and nx // 2 >= min_local and ny // 2 >= min_local):
        nx //= 2
        ny //= 2
        n += 1
    return n


@dataclass
class _CoarseSolver:
    """Rank-0 agglomerated exact solve of the coarsest level."""

    op: StencilOperator2D
    shape: tuple[int, int]        # global coarse (ny, nx)
    lu: object | None             # rank 0 only

    @classmethod
    def build(cls, op: StencilOperator2D) -> "_CoarseSolver":
        t, h = op.tile, op.halo
        kx_local = op.kx.data[h:h + t.ny, h:h + t.nx + 1].copy()
        ky_local = op.ky.data[h:h + t.ny + 1, h:h + t.nx].copy()
        pieces = op.comm.gather((t, kx_local, ky_local), root=0)
        ny_g = int(op.comm.allreduce(t.y1 if t.up is None else 0, op="max"))
        nx_g = int(op.comm.allreduce(t.x1 if t.right is None else 0,
                                     op="max"))
        lu = None
        if pieces is not None:
            kx_g = np.zeros((ny_g, nx_g + 1))
            ky_g = np.zeros((ny_g + 1, nx_g))
            for tile, kx_p, ky_p in pieces:
                kx_g[tile.y0:tile.y1, tile.x0:tile.x1 + 1] = kx_p
                ky_g[tile.y0:tile.y1 + 1, tile.x0:tile.x1] = ky_p
            A = _assemble_level(Level(kx=kx_g, ky=ky_g)).tocsc()
            lu = spla.splu(A)
        return cls(op=op, shape=(ny_g, nx_g), lu=lu)

    def solve(self, b: Field, out: Field) -> None:
        """Gather b -> exact solve on rank 0 -> broadcast correction."""
        comm = self.op.comm
        pieces = comm.gather((self.op.tile, b.interior.copy()), root=0)
        x_global = None
        if pieces is not None:
            b_global = np.zeros(self.shape)
            for tile, b_p in pieces:
                b_global[tile.global_slices] = b_p
            x_global = self.lu.solve(b_global.ravel()).reshape(self.shape)
        x_global = comm.bcast(x_global, root=0)
        out.interior[...] = x_global[self.op.tile.global_slices]


class DistributedMultigrid:
    """The hybrid V-cycle: decomposed levels + agglomerated coarse solve."""

    def __init__(self, op: StencilOperator2D, *,
                 pre_sweeps: int = 2, post_sweeps: int = 2,
                 omega: float = 0.8, min_local: int = 2,
                 max_levels: int = 16):
        check_positive("pre_sweeps", pre_sweeps)
        check_positive("post_sweeps", post_sweeps)
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps
        self.omega = omega
        # Every rank must agree on the level count.
        local = _local_levels(op.tile, min_local, max_levels)
        self.n_local_levels = int(op.comm.allreduce(local, op="min"))
        self.ops: list[StencilOperator2D] = [op]
        for _ in range(self.n_local_levels):
            self.ops.append(_coarsen_operator(self.ops[-1]))
        self.coarse = _CoarseSolver.build(self.ops[-1])
        self._inv_diag = [1.0 / lop.diagonal() for lop in self.ops]

    # -- level operations ----------------------------------------------------

    def _smooth(self, li: int, x: Field, b: Field, w: Field,
                sweeps: int) -> None:
        lop = self.ops[li]
        inv_diag = self._inv_diag[li]
        for _ in range(sweeps):
            lop.apply(x, w)
            x.interior += self.omega * inv_diag * (b.interior - w.interior)

    def cycle(self, b: Field, x: Field | None = None) -> Field:
        """One V-cycle for the finest-level system ``A x = b``."""
        if x is None:
            x = self.ops[0].new_field()
        self._cycle(0, x, b)
        return x

    def _cycle(self, li: int, x: Field, b: Field) -> None:
        lop = self.ops[li]
        if li == self.n_local_levels:
            self.coarse.solve(b, x)
            return
        w = lop.new_field()
        self._smooth(li, x, b, w, self.pre_sweeps)
        lop.apply(x, w)
        residual = b.interior - w.interior
        clop = self.ops[li + 1]
        cb = clop.new_field()
        cb.interior[...] = 0.25 * (residual[0::2, 0::2] + residual[1::2, 0::2]
                                   + residual[0::2, 1::2]
                                   + residual[1::2, 1::2])
        cx = clop.new_field()
        self._cycle(li + 1, cx, cb)
        corr = cx.interior
        xi = x.interior
        xi[0::2, 0::2] += corr
        xi[1::2, 0::2] += corr
        xi[0::2, 1::2] += corr
        xi[1::2, 1::2] += corr
        self._smooth(li, x, b, w, self.post_sweeps)


class DistributedMultigridPreconditioner(Preconditioner):
    """One hybrid V-cycle as ``z = M^{-1} r`` (SPD, any communicator)."""

    name = "distributed_multigrid"
    communication_free = False

    def __init__(self, op: StencilOperator2D, **kwargs):
        self.op = op
        self.mg = DistributedMultigrid(op, **kwargs)

    @property
    def n_levels(self) -> int:
        return self.mg.n_local_levels + 1

    def apply(self, r: Field, z: Field) -> None:
        z.data.fill(0.0)
        self.mg._cycle(0, z, r)


def dmgcg_solve(
    op: StencilOperator2D,
    b: Field,
    x0: Field | None = None,
    *,
    eps: float = 1e-10,
    max_iters: int = 1_000,
    pre_sweeps: int = 2,
    post_sweeps: int = 2,
    omega: float = 0.8,
) -> SolveResult:
    """CG preconditioned by the distributed hybrid V-cycle."""
    M = DistributedMultigridPreconditioner(
        op, pre_sweeps=pre_sweeps, post_sweeps=post_sweeps, omega=omega)
    result = cg_solve(op, b, x0, eps=eps, max_iters=max_iters,
                      preconditioner=M, solver_name="mgcg")
    result.n_levels = M.n_levels
    return result
