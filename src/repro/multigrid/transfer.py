"""Inter-grid transfer operators.

Piecewise-constant prolongation (each coarse cell value is injected into
its four children) paired with 4-cell averaging restriction — the
transpose pair matching the Galerkin coarsening in
:mod:`repro.multigrid.levels`, which keeps the V-cycle a symmetric
operator (required for use as a PCG preconditioner).
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError


def restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Average each 2x2 fine block onto its coarse parent cell."""
    ny, nx = fine.shape
    if ny % 2 or nx % 2:
        raise ConfigurationError(f"cannot restrict odd-sized array {fine.shape}")
    return 0.25 * (fine[0::2, 0::2] + fine[1::2, 0::2]
                   + fine[0::2, 1::2] + fine[1::2, 1::2])


def prolong_constant(coarse: np.ndarray, out: np.ndarray | None = None
                     ) -> np.ndarray:
    """Inject each coarse value into its four fine children."""
    ny, nx = coarse.shape
    if out is None:
        out = np.empty((2 * ny, 2 * nx), dtype=coarse.dtype)
    out[0::2, 0::2] = coarse
    out[1::2, 0::2] = coarse
    out[0::2, 1::2] = coarse
    out[1::2, 1::2] = coarse
    return out
