"""Level smoothers.

Weighted Jacobi is the default: symmetric (so the V-cycle preconditioner
stays SPD), trivially vectorised, and a faithful stand-in for the hybrid
smoothers AMG packages default to on accelerators.
"""

from __future__ import annotations

import numpy as np

from repro.multigrid.levels import Level, level_matvec
from repro.utils.validation import check_positive, require


def jacobi_smooth(level: Level, u: np.ndarray, b: np.ndarray,
                  sweeps: int = 2, omega: float = 0.8) -> np.ndarray:
    """``sweeps`` damped-Jacobi sweeps: ``u <- u + omega D^{-1}(b - A u)``."""
    check_positive("sweeps", sweeps)
    require(0.0 < omega <= 1.0, f"omega must be in (0,1], got {omega}")
    inv_diag = omega / level.diagonal()
    w = np.empty_like(u)
    for _ in range(sweeps):
        level_matvec(level, u, out=w)
        u += inv_diag * (b - w)
    return u


def chebyshev_smooth(level: Level, u: np.ndarray, b: np.ndarray,
                     sweeps: int = 3,
                     lam_max: float | None = None,
                     smooth_fraction: float = 4.0) -> np.ndarray:
    """Chebyshev polynomial smoother (the paper's §VIII observation that a
    Chebyshev method "function[s] well as a smoother").

    Targets the upper part of the spectrum ``[lam_max/smooth_fraction,
    lam_max]`` — exactly the high-frequency error multigrid wants the
    smoother to kill, leaving the smooth modes to the coarse grid.
    ``lam_max`` defaults to the Gershgorin bound (max row sum), which is
    cheap and always safe.
    """
    check_positive("sweeps", sweeps)
    require(smooth_fraction > 1.0,
            f"smooth_fraction must exceed 1, got {smooth_fraction}")
    if lam_max is None:
        # Gershgorin: diag + |off-diagonals| = diag + (diag - 1) here.
        lam_max = float((2.0 * level.diagonal() - 1.0).max())
    lam_min = lam_max / smooth_fraction
    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)
    sigma = theta / delta
    rho = 1.0 / sigma
    r = b - level_matvec(level, u)
    d = r / theta
    for _ in range(sweeps):
        u += d
        r -= level_matvec(level, d)
        rho_new = 1.0 / (2.0 * sigma - rho)
        d = rho_new * rho * d + (2.0 * rho_new / delta) * r
        rho = rho_new
    return u
