"""The ``COMM_CONTRACT`` schema and the comm-contract rules.

Every solver module (a module under ``solvers/`` defining a public
``*_solve`` function) must declare a module-level literal dict::

    COMM_CONTRACT = {
        "solver": "cg",                  # name used by the driver/registry
        "halo_exchanges_per_iter": 1,    # neighbour exchanges per iteration
        "allreduces_per_iter": 2,        # global reductions per iteration
        "halo_depth": 1,                 # default exchange depth
    }

Optional keys refine the budget:

- ``hot_function`` — where the iteration loop lives (``"func"`` or
  ``"Class.method"``); defaults to ``"<solver>_solve"``.  Explicitly
  ``None`` skips the static loop check (use with ``delegates_to``).
- ``delegates_to`` — dotted module whose iteration loop carries this
  solver's budget (CPPCG's outer loop *is* ``cg_solve``).
- ``allreduces_per_check`` — reductions paid once per convergence-check
  interval rather than per iteration (Chebyshev).
- ``halo_exchanges_per_inner_step`` — exchanges per preconditioner inner
  step at depth 1 (CPPCG); amortised by the matrix-powers depth.
- ``notes`` — free-form string.

Rules:

- ``RPR001`` — solver module missing a ``COMM_CONTRACT``;
- ``RPR002`` — static allreduce count in the iteration loop exceeds the
  contract (or communication appears inside a nested loop: unbounded);
- ``RPR003`` — static halo-exchange count exceeds the contract;
- ``RPR008`` — malformed contract (bad literal, schema violation, hot
  function or iteration loop not found).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    register,
)
from repro.analysis.costmodel import (
    CommCost,
    ModuleCostModel,
    find_iteration_loops,
    operator_table_for,
)

CONTRACT_NAME = "COMM_CONTRACT"

REQUIRED_KEYS: dict[str, type | tuple] = {
    "solver": str,
    "halo_exchanges_per_iter": (int, float),
    "allreduces_per_iter": (int, float),
    "halo_depth": int,
}
OPTIONAL_KEYS: dict[str, type | tuple] = {
    "hot_function": (str, type(None)),
    "delegates_to": str,
    "allreduces_per_check": (int, float),
    "halo_exchanges_per_inner_step": (int, float),
    "notes": str,
}


def extract_contract(tree: ast.Module) -> tuple[dict | None, int, str | None]:
    """Statically read ``COMM_CONTRACT`` from a module AST.

    Returns ``(contract, lineno, error)``; the contract is ``None`` when
    the assignment is absent or not a pure literal (``error`` says why).
    """
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == CONTRACT_NAME
                   for t in targets):
            continue
        try:
            value = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            return None, node.lineno, (
                f"{CONTRACT_NAME} must be a pure literal dict "
                "(statically evaluable)")
        if not isinstance(value, dict):
            return None, node.lineno, f"{CONTRACT_NAME} must be a dict"
        return value, node.lineno, None
    return None, 1, None


def validate_contract(contract: dict) -> list[str]:
    """Schema-check a contract; returns a list of problems (empty = ok)."""
    problems = []
    for key, typ in REQUIRED_KEYS.items():
        if key not in contract:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(contract[key], typ) or isinstance(
                contract[key], bool):
            problems.append(f"key {key!r} must be {_typename(typ)}, "
                            f"got {contract[key]!r}")
    for key, value in contract.items():
        if key in REQUIRED_KEYS:
            continue
        if key not in OPTIONAL_KEYS:
            problems.append(f"unknown key {key!r}")
        elif not isinstance(value, OPTIONAL_KEYS[key]):
            problems.append(f"key {key!r} must be "
                            f"{_typename(OPTIONAL_KEYS[key])}, got {value!r}")
    for key in ("halo_exchanges_per_iter", "allreduces_per_iter",
                "allreduces_per_check", "halo_exchanges_per_inner_step"):
        if isinstance(contract.get(key), (int, float)) and contract[key] < 0:
            problems.append(f"key {key!r} must be >= 0")
    if isinstance(contract.get("halo_depth"), int) and contract["halo_depth"] < 1:
        problems.append("key 'halo_depth' must be >= 1")
    return problems


def _typename(typ) -> str:
    if isinstance(typ, tuple):
        return "/".join(t.__name__ for t in typ)
    return typ.__name__


def find_function(tree: ast.Module,
                  qualname: str) -> tuple[ast.FunctionDef | None, str]:
    """Locate ``"func"`` or ``"Class.method"``; returns (node, class name)."""
    if "." in qualname:
        cls_name, meth = qualname.split(".", 1)
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == cls_name:
                for sub in node.body:
                    if isinstance(sub, ast.FunctionDef) and sub.name == meth:
                        return sub, cls_name
        return None, cls_name
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == qualname:
            return node, ""
    return None, ""


@register
class CommContractRule(Rule):
    code = "RPR001"
    name = "comm-contract"
    description = ("solver modules must declare a COMM_CONTRACT, and the "
                   "iteration loop's static communication counts must not "
                   "exceed it (RPR002 allreduces, RPR003 halo exchanges, "
                   "RPR008 malformed contract)")
    solver_only = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        contract, lineno, error = extract_contract(ctx.tree)
        if error is not None:
            yield ctx.finding("RPR008", error, line=lineno,
                              symbol=CONTRACT_NAME)
            return
        if contract is None:
            yield ctx.finding(
                "RPR001",
                f"solver module defines a public *_solve function but no "
                f"{CONTRACT_NAME}; declare its per-iteration communication "
                "budget (see docs/analysis.md)",
                line=1, symbol=ctx.path.stem)
            return
        problems = validate_contract(contract)
        for p in problems:
            yield ctx.finding("RPR008", f"invalid {CONTRACT_NAME}: {p}",
                              line=lineno, symbol=CONTRACT_NAME)
        if problems:
            return
        yield from self._check_budget(ctx, contract, lineno)

    def _check_budget(self, ctx: ModuleContext, contract: dict,
                      lineno: int) -> Iterator[Finding]:
        hot = contract.get("hot_function",
                           f"{contract['solver']}_solve")
        if hot is None or "delegates_to" in contract:
            return  # budget enforced in the delegate module / dynamically
        fn, cls_name = find_function(ctx.tree, hot)
        if fn is None:
            yield ctx.finding(
                "RPR008",
                f"hot_function {hot!r} not found in module", line=lineno,
                symbol=CONTRACT_NAME)
            return
        loops = find_iteration_loops(fn)
        if not loops:
            yield ctx.finding(
                "RPR008",
                f"hot_function {hot!r} contains no iteration loop",
                line=fn.lineno, symbol=hot)
            return
        model = ModuleCostModel(
            ctx.tree,
            operator_table=operator_table_for(ctx.path),
            ignore_receivers=ctx.config.ignore_receivers)
        loop, cost = max(
            ((lp, model.body_cost(lp.body, cls_name)
              + model.body_cost(lp.orelse, cls_name)) for lp in loops),
            key=lambda pair: (pair[1].unbounded,
                              pair[1].allreduces + pair[1].halos))
        budget_ar = contract["allreduces_per_iter"]
        budget_halo = contract["halo_exchanges_per_iter"]
        if cost.unbounded:
            yield ctx.finding(
                "RPR002",
                "communication call inside a nested loop within the "
                "iteration loop: per-iteration cost is statically "
                "unbounded (hoist it or declare a hot_function closer "
                "to the real hot loop)",
                line=loop.lineno, symbol=hot)
            return
        if cost.allreduces > budget_ar:
            yield ctx.finding(
                "RPR002",
                f"iteration loop of {hot} reaches {_fmt(cost.allreduces)} "
                f"allreduce(s) per iteration, exceeding the declared "
                f"allreduces_per_iter = {budget_ar} — every extra global "
                "reduction invalidates the paper's scaling budget",
                line=loop.lineno, symbol=hot)
        if cost.halos > budget_halo:
            yield ctx.finding(
                "RPR003",
                f"iteration loop of {hot} reaches {_fmt(cost.halos)} halo "
                f"exchange(s) per iteration, exceeding the declared "
                f"halo_exchanges_per_iter = {budget_halo}",
                line=loop.lineno, symbol=hot)


def _fmt(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"
