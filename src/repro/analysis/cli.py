"""Command line interface: ``python -m repro.analysis [paths] [options]``.

Exit status: 0 when clean (no non-baselined findings, all verified
contracts match), 1 on findings or verify mismatches, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import all_rules, analyze_paths
from repro.analysis.report import (
    render_json,
    render_text,
    render_verify_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("Communication-contract linter and static analysis "
                     "for solver hot loops (rules RPR0xx; see "
                     "docs/analysis.md)"))
    parser.add_argument("paths", nargs="*",
                        help="files/directories to analyze "
                             "(default: [tool.repro-analysis] paths)")
    parser.add_argument("--root", default=".",
                        help="project root holding pyproject.toml / the "
                             "baseline file (default: cwd)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        dest="fmt", help="report format")
    parser.add_argument("--baseline", default="",
                        help="baseline file (default from config)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline deterministically from "
                             "current findings, print the added/removed/"
                             "kept delta and exit 0")
    parser.add_argument("--select", default="",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--disable", default="",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--verify", action="store_true",
                        help="also run solvers under InstrumentedComm and "
                             "cross-check measured per-iteration counts "
                             "against each COMM_CONTRACT")
    parser.add_argument("--verify-only", action="store_true",
                        help="skip the static pass, only --verify")
    parser.add_argument("--verify-size", type=int, default=32,
                        help="mesh edge for the verify solves (default 32)")
    parser.add_argument("--verify-solver", action="append", default=[],
                        help="restrict --verify to this solver name "
                             "(repeatable)")
    parser.add_argument("--verify-resilience", action="store_true",
                        help="route the verify solves through the resilient "
                             "comm stack (retry + disabled fault injector); "
                             "implies --verify")
    parser.add_argument("--verify-integrity", action="store_true",
                        help="route the verify solves through the "
                             "checksummed-envelope stack with a durably "
                             "checkpointing guard; implies --verify")
    parser.add_argument("--verify-sanitize", action="store_true",
                        help="stack the runtime SPMD sanitizer outermost "
                             "over the full resilience + integrity stack "
                             "for the verify solves (re-proves every "
                             "COMM_CONTRACT with the sanitizer engaged); "
                             "implies --verify, --verify-resilience and "
                             "--verify-integrity")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = " [solver modules]" if rule.solver_only else ""
            print(f"{rule.code} {rule.name}{scope}: {rule.description}")
        return 0

    root = Path(args.root)
    config = AnalysisConfig.from_pyproject(root)
    known_codes = {rule.code for rule in all_rules()}
    # RPR002/003/008 are emitted by the comm-contract rule (RPR001);
    # selecting or disabling them means that rule.
    aliases = {"RPR002": "RPR001", "RPR003": "RPR001", "RPR008": "RPR001"}
    for flag, raw in (("--select", args.select), ("--disable", args.disable)):
        if not raw:
            continue
        wanted = tuple(dict.fromkeys(
            aliases.get(c.strip(), c.strip())
            for c in raw.split(",") if c.strip()))
        unknown = sorted(set(wanted) - known_codes)
        if unknown:
            print(f"error: {flag} got unknown rule code(s) "
                  f"{', '.join(unknown)}; known: "
                  f"{', '.join(sorted(known_codes))}", file=sys.stderr)
            return 2
        if flag == "--select":
            config.select = wanted
        else:
            config.disable = wanted

    paths = args.paths or [str(root / p) for p in config.paths]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline) if args.baseline \
        else root / config.baseline

    verify_reports = None
    if args.verify or args.verify_only or args.verify_resilience \
            or args.verify_integrity or args.verify_sanitize:
        from repro.analysis.verify import default_specs, kernel_specs, \
            verify_contracts
        try:
            # The shipped configurations plus the same solvers re-routed
            # through the fused kernel backend: kernels must be
            # communication-neutral (docs/kernels.md).
            verify_reports = verify_contracts(
                specs=default_specs() + kernel_specs(),
                n=args.verify_size, names=args.verify_solver or None,
                resilience=args.verify_resilience,
                integrity=args.verify_integrity,
                sanitize=args.verify_sanitize)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.verify_only:
        if args.fmt == "json":
            from repro.analysis.core import AnalysisResult
            print(render_json(AnalysisResult(), verify_reports))
        else:
            print(render_verify_text(verify_reports))
        return 0 if all(r.ok for r in verify_reports) else 1

    baseline = None
    if not args.no_baseline and not args.write_baseline \
            and not args.update_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = analyze_paths(paths, config, baseline=baseline)

    if args.update_baseline:
        added, removed, kept = update_baseline(
            baseline_path, result.findings)
        print(f"baseline {baseline_path}: +{added} added, "
              f"-{removed} removed, {kept} kept")
        return 0

    if args.write_baseline:
        n = write_baseline(baseline_path, result.findings)
        print(f"wrote {n} fingerprint(s) to {baseline_path}")
        return 0

    if args.fmt == "json":
        print(render_json(result, verify_reports))
    else:
        print(render_text(result))
        if verify_reports is not None:
            print(render_verify_text(verify_reports))

    ok = result.ok and (verify_reports is None
                        or all(r.ok for r in verify_reports))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
