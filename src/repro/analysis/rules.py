"""Generic hygiene rules (RPR004-RPR007).

These ride in the same framework as the comm-contract checker:

- ``RPR004`` — array allocation inside an iteration loop of a solver
  module (``np.zeros``/``np.empty``/``.copy()``/``op.new_field()`` in a
  hot loop churns the allocator and pollutes timing measurements; all
  solver workspaces are pre-allocated before the loop);
- ``RPR005`` — precision drift: ``float32``/``float16`` dtypes anywhere in
  the analyzed tree (all kernels are double precision, matching TeaLeaf);
  optionally (``require-dtype = true``) also dtype-less ``np.empty`` /
  ``np.zeros`` /... construction in solver modules;
- ``RPR006`` — mutable default argument;
- ``RPR007`` — bare ``except:``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.costmodel import dotted_parts

#: ``np.<name>`` calls that allocate a fresh array.
NUMPY_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "array", "copy",
})
#: Method names that allocate regardless of receiver.
ALLOC_METHODS = frozenset({"copy", "new_field"})


def _functions(tree: ast.Module):
    """All (qualname, def) pairs in a module — methods, nested functions
    (any depth, even inside loops or conditionals) and ``async def``
    included, with dotted qualnames."""
    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            elif not isinstance(child, ast.Lambda):
                yield from visit(child, prefix)
    yield from visit(tree, "")


_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
              ast.Lambda)


def _walk_scoped(node: ast.AST):
    """``ast.walk`` that does not descend into nested defs/classes/lambdas
    — those belong to their own scope and are visited via their own
    ``_functions`` entry."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _DEF_NODES):
            stack.extend(ast.iter_child_nodes(child))


def _loops_in(fn: ast.FunctionDef):
    for node in _walk_scoped(fn):
        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            yield node


@register
class AllocationInHotLoopRule(Rule):
    code = "RPR004"
    name = "no-alloc-in-hot-loop"
    description = ("no array allocation (np.zeros/np.empty/.copy()/"
                   "new_field) inside iteration loops of solver modules")
    solver_only = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Loops and allocations are both scoped to their directly
        # containing function (nested defs are visited via their own
        # _functions entry), so each allocation is attributed to the
        # innermost qualname; the location dedupe is a safety net.
        seen: set[tuple[int, int]] = set()
        for qualname, fn in _functions(ctx.tree):
            for loop in _loops_in(fn):
                for node in _walk_scoped(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    alloc = self._allocation_name(node)
                    if alloc is None:
                        continue
                    key = (node.lineno, node.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield ctx.finding(
                            self.code,
                            f"allocation {alloc}() inside the iteration "
                            f"loop of {qualname}; pre-allocate the "
                            "workspace before the loop",
                            node=node, symbol=qualname)

    @staticmethod
    def _allocation_name(call: ast.Call) -> str | None:
        parts = dotted_parts(call.func)
        if parts is None or len(parts) < 2:
            return None
        name = parts[-1]
        if parts[-2] in {"np", "numpy"} and name in NUMPY_ALLOCATORS:
            return f"{parts[-2]}.{name}"
        if name in ALLOC_METHODS:
            return ".".join(parts[-2:])
        return None


#: Single-precision dtype spellings RPR005 rejects.
_DRIFT_ATTRS = frozenset({"float32", "float16", "single", "half"})
_DRIFT_STRINGS = frozenset({"float32", "float16", "f4", "f2", "<f4", "<f2"})


@register
class DtypeDriftRule(Rule):
    code = "RPR005"
    name = "dtype-drift"
    description = ("no single-precision dtype literals outside the "
                   "sanctioned mixed-precision layer (repro.numerics owns "
                   "the working-dtype knob; and, with require-dtype, no "
                   "dtype-less array construction in solver modules)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # The mixed-precision layer (``mixed-precision-paths``, default
        # ``*/numerics/*.py``) is the one place allowed to spell
        # ``np.float32``: every other module must take the working dtype
        # through the SolverOptions knob, so a literal there is still
        # accidental precision drift.
        if not ctx.config.is_mixed_precision_path(ctx.path):
            for node in ast.walk(ctx.tree):
                if (isinstance(node, ast.Attribute)
                        and node.attr in _DRIFT_ATTRS
                        and isinstance(node.value, ast.Name)
                        and node.value.id in {"np", "numpy"}):
                    yield ctx.finding(
                        self.code,
                        f"single-precision dtype np.{node.attr}: spell the "
                        "working precision through the SolverOptions dtype "
                        "knob (repro.numerics), not a literal",
                        node=node)
                elif (isinstance(node, ast.keyword) and node.arg == "dtype"
                        and isinstance(node.value, ast.Constant)
                        and node.value.value in _DRIFT_STRINGS):
                    yield ctx.finding(
                        self.code,
                        f"single-precision dtype {node.value.value!r}: spell "
                        "the working precision through the SolverOptions "
                        "dtype knob (repro.numerics), not a literal",
                        node=node.value)
        if ctx.config.require_dtype and ctx.is_solver_module:
            yield from self._check_dtype_less(ctx)

    def _check_dtype_less(self, ctx: ModuleContext) -> Iterator[Finding]:
        sized = {"zeros", "empty", "ones", "full"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if (parts and len(parts) >= 2 and parts[-2] in {"np", "numpy"}
                    and parts[-1] in sized
                    and not any(k.arg == "dtype" for k in node.keywords)):
                yield ctx.finding(
                    self.code,
                    f"dtype-less np.{parts[-1]}() in a solver module; pass "
                    "dtype=np.float64 explicitly",
                    node=node)


@register
class MutableDefaultRule(Rule):
    code = "RPR006"
    name = "mutable-default"
    description = "no mutable default arguments (list/dict/set literals)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for qualname, fn in _functions(ctx.tree):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None]
            for d in defaults:
                if isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                        isinstance(d, ast.Call)
                        and isinstance(d.func, ast.Name)
                        and d.func.id in {"list", "dict", "set"}):
                    yield ctx.finding(
                        self.code,
                        f"mutable default argument in {qualname}; default "
                        "to None and create the object in the body",
                        node=d, symbol=qualname)


@register
class BareExceptRule(Rule):
    code = "RPR007"
    name = "no-bare-except"
    description = "no bare except: clauses (they swallow KeyboardInterrupt)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.code,
                    "bare except: catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                    node=node)
