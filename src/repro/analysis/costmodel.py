"""Static per-iteration communication cost model.

Counts the communication call sites *statically reachable* from a piece of
solver code:

- direct primitives — ``*.allreduce(...)`` (one global reduction) and
  ``*exchanger*.exchange(...)``/``begin_exchange`` (one halo exchange);
- operator helpers — calls on a receiver named ``op``/``self.op`` resolve
  through a cost table built by analyzing ``StencilOperator2D``'s own
  methods (``apply`` → 1 halo exchange, ``dot``/``dots``/``norm`` → 1
  allreduce, ``residual`` → 1 halo exchange, ...).  The table is derived
  from the AST of the sibling ``operator.py`` when present, falling back
  to a built-in table with the same contents;
- module-local helpers — calls that resolve (uniquely, by name) to a
  function or method defined in the module under analysis are followed one
  level, so e.g. ``space.project(w)`` in deflated CG is charged the
  allreduce hidden in ``DeflationSpace.wt``.

Control flow is approximated conservatively: alternative branches
contribute the component-wise **maximum** of their costs (an iteration
takes one branch), sequential statements add, and any communication inside
a *nested* loop makes the cost :attr:`CommCost.unbounded` (a static trip
count is unknowable, and per the paper's budgets no hot loop may contain
one).  Calls on receivers in ``ignore-receivers`` (preconditioner handles
like ``M``) are skipped: preconditioner communication is accounted
separately from the iteration skeleton.  Bodies of ``with
recovery_scope(...)`` and ``with replacement_scope(...)`` blocks are
excluded entirely: at runtime the event log reroutes that traffic under
``RECOVERY_KIND`` / ``REPLACEMENT_KIND`` respectively, so it is never
part of the first-attempt contract the budgets describe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.config import DEFAULT_IGNORE_RECEIVERS

#: Attribute names counted as one global reduction at the call site.
REDUCTION_ATTRS = frozenset({"allreduce"})
#: Attribute names counted as one halo exchange when called on an
#: exchanger-ish receiver.
HALO_ATTRS = frozenset({"exchange", "begin_exchange"})
#: Receiver names that look like the stencil operator.
OPERATOR_RECEIVERS = frozenset({"op", "operator"})


@dataclass(frozen=True)
class CommCost:
    """(allreduces, halo exchanges) statically reachable once."""

    allreduces: float = 0.0
    halos: float = 0.0
    unbounded: bool = False

    def __add__(self, other: "CommCost") -> "CommCost":
        return CommCost(self.allreduces + other.allreduces,
                        self.halos + other.halos,
                        self.unbounded or other.unbounded)

    def __bool__(self) -> bool:
        return bool(self.allreduces or self.halos or self.unbounded)

    @staticmethod
    def branch_max(*costs: "CommCost") -> "CommCost":
        return CommCost(max((c.allreduces for c in costs), default=0.0),
                        max((c.halos for c in costs), default=0.0),
                        any(c.unbounded for c in costs))


ZERO = CommCost()

#: Fallback operator-method costs (used when the sibling ``operator.py``
#: is not available, e.g. analyzing a lone file); mirrors
#: :class:`repro.solvers.operator.StencilOperator2D`.
DEFAULT_OPERATOR_COSTS: dict[str, CommCost] = {
    "apply": CommCost(halos=1),
    "residual": CommCost(halos=1),
    "dot": CommCost(allreduces=1),
    "dots": CommCost(allreduces=1),
    "norm": CommCost(allreduces=1),
    "apply_noexchange": ZERO,
    "new_field": ZERO,
    "diagonal": ZERO,
    "diagonal_padded": ZERO,
    "from_global_faces": ZERO,
}


def dotted_parts(node: ast.AST) -> list[str] | None:
    """``self.op.comm.allreduce`` → ``["self", "op", "comm", "allreduce"]``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class ModuleCostModel:
    """Resolves call sites in one module to :class:`CommCost` values."""

    def __init__(self, tree: ast.Module,
                 operator_table: dict[str, CommCost] | None = None,
                 ignore_receivers: frozenset[str] = DEFAULT_IGNORE_RECEIVERS):
        self.operator_table = (operator_table if operator_table is not None
                               else dict(DEFAULT_OPERATOR_COSTS))
        self.ignore_receivers = ignore_receivers
        self.functions: dict[str, ast.FunctionDef] = {}
        self.methods: dict[str, list[tuple[str, ast.FunctionDef]]] = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, ast.FunctionDef):
                        self.methods.setdefault(sub.name, []).append(
                            (node.name, sub))
        self._memo: dict[tuple[str, str], CommCost] = {}
        self._in_progress: set[tuple[str, str]] = set()

    # -- function/method costs -------------------------------------------------

    def function_cost(self, fn: ast.FunctionDef, class_name: str = "") -> CommCost:
        """Whole-body cost of a helper (nested loops with comm → unbounded)."""
        key = (class_name, fn.name)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress:  # recursion: charge the cycle nothing
            return ZERO
        self._in_progress.add(key)
        try:
            cost = self.body_cost(fn.body, class_name)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = cost
        return cost

    def lookup(self, name: str, class_name: str = "") -> CommCost | None:
        """Cost of a module-local function/method by (unique) name."""
        if class_name:
            for cls, fn in self.methods.get(name, ()):
                if cls == class_name:
                    return self.function_cost(fn, cls)
        candidates = self.methods.get(name, [])
        if len(candidates) == 1:
            cls, fn = candidates[0]
            return self.function_cost(fn, cls)
        if name in self.functions:
            return self.function_cost(self.functions[name])
        return None

    # -- statement-level traversal --------------------------------------------

    def body_cost(self, stmts: list[ast.stmt], class_name: str = "") -> CommCost:
        total = ZERO
        for s in stmts:
            total = total + self.stmt_cost(s, class_name)
        return total

    def stmt_cost(self, stmt: ast.stmt, class_name: str = "") -> CommCost:
        if isinstance(stmt, ast.If):
            return (self.expr_cost(stmt.test, class_name)
                    + CommCost.branch_max(
                        self.body_cost(stmt.body, class_name),
                        self.body_cost(stmt.orelse, class_name)))
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = (stmt.test if isinstance(stmt, ast.While) else stmt.iter)
            inner = (self.expr_cost(header, class_name)
                     + self.body_cost(stmt.body, class_name)
                     + self.body_cost(stmt.orelse, class_name))
            if inner:
                return CommCost(unbounded=True)
            return ZERO
        if isinstance(stmt, ast.Try):
            handlers = CommCost.branch_max(
                ZERO, *(self.body_cost(h.body, class_name)
                        for h in stmt.handlers))
            return (self.body_cost(stmt.body, class_name) + handlers
                    + self.body_cost(stmt.orelse, class_name)
                    + self.body_cost(stmt.finalbody, class_name))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            items = ZERO
            for item in stmt.items:
                items = items + self.expr_cost(item.context_expr, class_name)
            if self._is_rerouted_scope(stmt):
                # Communication inside a ``recovery_scope(...)`` or
                # ``replacement_scope(...)`` block is rerouted traffic: at
                # runtime the event log re-buckets it under RECOVERY_KIND /
                # REPLACEMENT_KIND, so the dynamic verifier never counts it
                # as first-attempt cost — the static budget mirrors that
                # semantic and excludes the body.
                return items
            return items + self.body_cost(stmt.body, class_name)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return ZERO
        # Leaf statements: every Call expression inside contributes.
        return self.expr_cost(stmt, class_name)

    #: Context managers whose ``with`` bodies the static budget excludes
    #: (their runtime traffic is re-bucketed away from first-attempt kinds).
    REROUTED_SCOPES = frozenset({"recovery_scope", "replacement_scope"})

    @classmethod
    def _is_rerouted_scope(cls, stmt: ast.With | ast.AsyncWith) -> bool:
        """True when any with-item enters a rerouted event scope."""
        for item in stmt.items:
            ctx = item.context_expr
            if not isinstance(ctx, ast.Call):
                continue
            parts = dotted_parts(ctx.func)
            if parts and parts[-1] in cls.REROUTED_SCOPES:
                return True
        return False

    def expr_cost(self, node: ast.AST | None, class_name: str = "") -> CommCost:
        if node is None:
            return ZERO
        total = ZERO
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                total = total + self.call_cost(sub, class_name)
        return total

    # -- call resolution -------------------------------------------------------

    def call_cost(self, call: ast.Call, class_name: str = "") -> CommCost:
        parts = dotted_parts(call.func)
        if parts is None:
            return ZERO
        name = parts[-1]
        receiver = parts[:-1]
        if not receiver:  # plain f(...) — module-level function?
            fn = self.functions.get(name)
            return self.function_cost(fn) if fn is not None else ZERO
        if receiver[-1] in self.ignore_receivers:
            return ZERO
        if name in REDUCTION_ATTRS:
            return CommCost(allreduces=1)
        if name in HALO_ATTRS and any("exchanger" in r for r in receiver):
            return CommCost(halos=1)
        if receiver[-1] in OPERATOR_RECEIVERS or receiver[-2:] == ["self", "op"]:
            return self.operator_table.get(name, ZERO)
        if receiver == ["self"]:
            cost = self.lookup(name, class_name)
            return cost if cost is not None else ZERO
        # Any other receiver: unique module-local method name match.
        cost = self.lookup(name)
        return cost if cost is not None else ZERO


def build_operator_table(
        operator_path: Path,
        class_name: str = "StencilOperator2D") -> dict[str, CommCost]:
    """Derive the operator cost table from ``operator.py``'s own AST.

    Falls back to :data:`DEFAULT_OPERATOR_COSTS` when the file is missing
    or unparsable, and fills any method not found with the default entry,
    so analyses of lone files in temp dirs still resolve ``op.*`` calls.
    """
    table = dict(DEFAULT_OPERATOR_COSTS)
    try:
        tree = ast.parse(operator_path.read_text(), filename=str(operator_path))
    except (OSError, SyntaxError, ValueError):
        return table
    model = ModuleCostModel(tree, operator_table={})
    for cand_name, defs in model.methods.items():
        for cls, fn in defs:
            if cls == class_name:
                table[cand_name] = model.function_cost(fn, cls)
    return table


_TABLE_CACHE: dict[Path, dict[str, CommCost]] = {}


def operator_table_for(module_path: Path) -> dict[str, CommCost]:
    """Operator cost table for a solver module (sibling ``operator.py``)."""
    sibling = module_path.parent / "operator.py"
    key = sibling.resolve() if sibling.exists() else Path("<default>")
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = (build_operator_table(sibling) if sibling.exists()
                             else dict(DEFAULT_OPERATOR_COSTS))
    return _TABLE_CACHE[key]


def find_iteration_loops(fn: ast.FunctionDef) -> list[ast.stmt]:
    """Outermost loop statements of a function (candidates for "the"
    iteration loop), in source order — nested loops are not descended."""
    loops: list[ast.stmt] = []

    def visit(stmts: list[ast.stmt]) -> None:
        for s in stmts:
            if isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
                loops.append(s)
                continue  # outermost only
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(s, attr, None)
                if child:
                    visit(child)
            for h in getattr(s, "handlers", ()):
                visit(h.body)

    visit(fn.body)
    return loops
