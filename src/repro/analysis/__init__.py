"""Custom static analysis for the repro codebase.

The paper's central claim is a *communication budget* per solver iteration
(CG: 1 halo exchange + 2 allreduces; fused CG: 1 + 1; CPPCG: reductions
pushed out of the inner iterations entirely).  This package makes those
budgets machine-checked invariants instead of docstring prose:

- every solver module declares a machine-readable ``COMM_CONTRACT``;
- an AST pass walks the solver's iteration loop, counts reachable
  communication call sites (following calls into the
  :mod:`repro.solvers.operator` helpers one level deep) and fails when the
  static counts exceed the declared contract (rules ``RPR001``-``RPR003``,
  ``RPR008``);
- supporting hygiene rules catch allocations inside hot loops, precision
  drift, mutable default arguments and bare ``except:`` clauses
  (``RPR004``-``RPR007``);
- SPMD correctness rules (:mod:`repro.analysis.spmd`) catch
  rank-divergent collectives (``RPR009``), halo tag/peer mismatches
  (``RPR010``) and non-blocking buffer aliasing (``RPR011``) statically;
- a ``--verify`` mode runs a small crooked-pipe solve per solver under
  :class:`~repro.comm.instrument.InstrumentedComm` and cross-checks the
  *measured* per-iteration reduction/halo counts against each contract, so
  the contracts can never drift from reality; ``--verify-sanitize``
  re-proves every contract with the runtime SPMD sanitizer
  (:class:`~repro.comm.sanitize.SanitizerComm`) stacked outermost.

Run it with ``python -m repro.analysis [paths]`` (or ``make lint``); see
``docs/analysis.md`` for the rule catalogue and the contract schema.
"""

from repro.analysis.core import (
    AnalysisResult,
    Finding,
    ModuleContext,
    all_rules,
    analyze_paths,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.contracts import (
    CONTRACT_NAME,
    extract_contract,
    validate_contract,
)
from repro.analysis.verify import VerifyReport, verify_contracts

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "CONTRACT_NAME",
    "Finding",
    "ModuleContext",
    "VerifyReport",
    "all_rules",
    "analyze_paths",
    "extract_contract",
    "validate_contract",
    "verify_contracts",
]
