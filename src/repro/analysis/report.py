"""Text and JSON reporters for analysis and verify results."""

from __future__ import annotations

import json

from repro.analysis.core import AnalysisResult, fingerprints


def render_text(result: AnalysisResult) -> str:
    """Human-readable report, one ``path:line:col CODE message`` per line."""
    out = []
    for f in result.findings:
        out.append(f"{f.location()}: {f.code} {f.message}")
    summary = (f"{len(result.findings)} finding(s) "
               f"in {result.files_checked} file(s)")
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed inline")
    if extras:
        summary += f" ({', '.join(extras)})"
    out.append(summary)
    return "\n".join(out)


def render_json(result: AnalysisResult,
                verify_reports: list | None = None) -> str:
    """Machine-readable report (``--format json``), diffable across PRs."""
    prints = fingerprints(result.all_raw())
    payload = {
        "version": 1,
        "tool": "repro.analysis",
        "files_checked": result.files_checked,
        "findings": [
            {**f.as_dict(), "fingerprint": prints[f]}
            for f in result.findings
        ],
        "baselined": [prints[f] for f in result.baselined],
        "suppressed": [prints[f] for f in result.suppressed],
        "ok": result.ok,
    }
    if verify_reports is not None:
        payload["verify"] = [r.as_dict() for r in verify_reports]
        payload["ok"] = payload["ok"] and all(r.ok for r in verify_reports)
    return json.dumps(payload, indent=2)


def render_verify_text(reports: list) -> str:
    """One line per verified solver configuration."""
    out = []
    for r in reports:
        status = "ok" if r.ok else "FAIL"
        out.append(
            f"[{status}] {r.name}: measured "
            f"{r.measured_allreduces:g} allreduce(s) + "
            f"{r.measured_halos:g} halo exchange(s) per iteration "
            f"(expected {r.expected_allreduces:g} + {r.expected_halos:g}"
            f" from {r.module}.COMM_CONTRACT"
            f"{', ' + r.detail if r.detail else ''})")
    bad = sum(1 for r in reports if not r.ok)
    out.append(f"verify: {len(reports) - bad}/{len(reports)} solver "
               "configuration(s) match their contracts")
    return "\n".join(out)
