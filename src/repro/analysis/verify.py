"""Dynamic contract verification (``python -m repro.analysis --verify``).

Bridges the static contracts to reality: each solver runs a small
crooked-pipe solve under :class:`~repro.comm.instrument.InstrumentedComm`,
and the *measured* per-iteration reduction/halo-exchange counts from the
:class:`~repro.utils.events.EventLog` are cross-checked against the
module's ``COMM_CONTRACT``.

Methodology: per solver configuration we run the same problem twice with
different iteration budgets (``eps`` is set unreachably tight so neither
run converges), wrap each solve in an
:class:`~repro.comm.instrument.EventWindow`, and difference the two
windows.  Setup communication (initial residual, warm-up CG, deflation
coarse assembly, ...) is identical in both runs and cancels exactly, so
the quotient is the steady-state per-iteration cost — compared against
the contract's declared budget to a 1e-9 tolerance (the counts are exact
small rationals).

Expected values are derived from the contract plus the run parameters:

- matvec solvers: the declared budget verbatim;
- Chebyshev: ``allreduces_per_check / check_interval`` reductions and
  ``halo_exchanges_per_iter / halo_depth`` exchanges per step (the matrix
  powers kernel amortises one deep exchange over ``halo_depth`` steps);
- CPPCG: ``halo_exchanges_per_iter + ceil(inner_steps / halo_depth) *
  halo_exchanges_per_inner_step`` exchanges per outer iteration.
"""

from __future__ import annotations

import importlib
import math
from dataclasses import dataclass
from typing import Callable

#: Relative tolerance unreachable in float64 — the solve never converges,
#: so ``result.iterations`` equals the requested budget.
EPS_NEVER = 1e-300

#: Comparison tolerance for measured-vs-expected per-iteration counts
#: (both sides are exact small rationals; this only absorbs float division).
TOLERANCE = 1e-9


@dataclass
class VerifyReport:
    """Measured vs declared per-iteration communication for one solver."""

    name: str
    module: str
    iterations: int
    measured_allreduces: float
    measured_halos: float
    expected_allreduces: float
    expected_halos: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (abs(self.measured_allreduces - self.expected_allreduces)
                <= TOLERANCE
                and abs(self.measured_halos - self.expected_halos)
                <= TOLERANCE)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "module": self.module,
            "iterations": self.iterations,
            "measured": {"allreduces_per_iter": self.measured_allreduces,
                         "halo_exchanges_per_iter": self.measured_halos},
            "expected": {"allreduces_per_iter": self.expected_allreduces,
                         "halo_exchanges_per_iter": self.expected_halos},
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass
class VerifySpec:
    """One solver configuration to measure."""

    name: str
    module: str           # dotted module whose COMM_CONTRACT applies
    halo: int             # field halo depth the run needs
    iters: tuple[int, int]  # the two iteration budgets to difference
    run: Callable         # (op, b, bounds, max_iters, guard=None) -> SolveResult
    expected: Callable    # (contract) -> (allreduces, halos) per iteration
    detail: str = ""
    #: Optional variant of ``run`` with periodic residual replacement
    #: switched on — used by the sanitized verify pass to prove that
    #: replacement collectives (rerouted to REPLACEMENT_KIND) stay both
    #: contract-exact *and* sanitizer-transparent.
    run_replaced: Callable | None = None


def _gershgorin_lam_max(kxg, kyg) -> float:
    """Safe upper eigenvalue bound of ``A = I + D`` (row-sum bound).

    Overestimating ``lam_max`` keeps Chebyshev stable (just slower), which
    is what the verifier wants: a fixed number of non-converging steps.
    """
    return 1.0 + 4.0 * (float(kxg.max()) + float(kyg.max()))


def default_specs() -> list[VerifySpec]:
    """The shipped solver configurations to verify."""
    from repro.solvers import (
        cg_fused_solve,
        cg_solve,
        chebyshev_solve,
        deflated_cg_solve,
        jacobi_solve,
        ppcg_solve,
    )

    def per_iter(contract):
        return (contract["allreduces_per_iter"],
                contract["halo_exchanges_per_iter"])

    def cheby_expected(depth):
        def expected(contract):
            ar = (contract["allreduces_per_iter"]
                  + contract.get("allreduces_per_check", 0) / 10)
            return ar, contract["halo_exchanges_per_iter"] / depth
        return expected

    def ppcg_expected(inner, depth):
        def expected(contract):
            halos = (contract["halo_exchanges_per_iter"]
                     + math.ceil(inner / depth)
                     * contract.get("halo_exchanges_per_inner_step", 0))
            return contract["allreduces_per_iter"], halos
        return expected

    return [
        VerifySpec(
            "cg", "repro.solvers.cg", halo=1, iters=(4, 12),
            run=lambda op, b, bounds, k, guard=None: cg_solve(
                op, b, eps=EPS_NEVER, max_iters=k, guard=guard),
            expected=per_iter,
            run_replaced=lambda op, b, bounds, k, guard=None: cg_solve(
                op, b, eps=EPS_NEVER, max_iters=k, guard=guard,
                replace_interval=5)),
        VerifySpec(
            "cg_fused", "repro.solvers.cg_fused", halo=1, iters=(4, 12),
            run=lambda op, b, bounds, k, guard=None: cg_fused_solve(
                op, b, eps=EPS_NEVER, max_iters=k),
            expected=per_iter),
        VerifySpec(
            "jacobi", "repro.solvers.jacobi", halo=1, iters=(5, 15),
            run=lambda op, b, bounds, k, guard=None: jacobi_solve(
                op, b, eps=EPS_NEVER, max_iters=k),
            expected=per_iter),
        VerifySpec(
            "chebyshev", "repro.solvers.chebyshev", halo=1, iters=(20, 60),
            run=lambda op, b, bounds, k, guard=None: chebyshev_solve(
                op, b, eps=EPS_NEVER, max_iters=k, warmup_iters=8,
                check_interval=10, bounds=bounds, guard=guard),
            expected=cheby_expected(depth=1),
            detail="check_interval=10"),
        VerifySpec(
            "chebyshev[depth=4]", "repro.solvers.chebyshev", halo=4,
            iters=(20, 60),
            run=lambda op, b, bounds, k, guard=None: chebyshev_solve(
                op, b, eps=EPS_NEVER, max_iters=k, warmup_iters=8,
                check_interval=10, halo_depth=4, bounds=bounds, guard=guard),
            expected=cheby_expected(depth=4),
            detail="matrix powers, check_interval=10"),
        VerifySpec(
            "ppcg", "repro.solvers.ppcg", halo=1, iters=(3, 9),
            run=lambda op, b, bounds, k, guard=None: ppcg_solve(
                op, b, eps=EPS_NEVER, max_iters=k, inner_steps=4,
                warmup_iters=8, bounds=bounds, guard=guard),
            expected=ppcg_expected(inner=4, depth=1),
            detail="inner_steps=4",
            run_replaced=lambda op, b, bounds, k, guard=None: ppcg_solve(
                op, b, eps=EPS_NEVER, max_iters=k, inner_steps=4,
                warmup_iters=8, bounds=bounds, guard=guard,
                replace_interval=5)),
        VerifySpec(
            "ppcg[depth=4]", "repro.solvers.ppcg", halo=4, iters=(3, 9),
            run=lambda op, b, bounds, k, guard=None: ppcg_solve(
                op, b, eps=EPS_NEVER, max_iters=k, inner_steps=8,
                halo_depth=4, warmup_iters=8, bounds=bounds, guard=guard),
            expected=ppcg_expected(inner=8, depth=4),
            detail="matrix powers, inner_steps=8",
            run_replaced=lambda op, b, bounds, k, guard=None: ppcg_solve(
                op, b, eps=EPS_NEVER, max_iters=k, inner_steps=8,
                halo_depth=4, warmup_iters=8, bounds=bounds, guard=guard,
                replace_interval=5)),
        VerifySpec(
            "dcg", "repro.solvers.deflation", halo=1, iters=(4, 12),
            run=lambda op, b, bounds, k, guard=None: deflated_cg_solve(
                op, b, eps=EPS_NEVER, max_iters=k, blocks=(2, 2)),
            expected=per_iter),
    ]


def kernel_specs(backend: str = "fused") -> list[VerifySpec]:
    """Solver configurations re-run through a non-default kernel backend.

    Routing the hot loops through :meth:`StencilOperator2D.with_kernels`
    must be communication-neutral: the fused ``apply_dot`` /
    ``residual_dot`` chains change *how* the local arithmetic is blocked,
    never how often the solver reduces or exchanges.  These specs re-prove
    the matvec-family budgets with the backend engaged; the CLI appends
    them to :func:`default_specs` so ``--verify`` fails if a backend ever
    smuggles in extra communication.
    """
    from repro.solvers import cg_fused_solve, cg_solve, jacobi_solve, \
        ppcg_solve

    def per_iter(contract):
        return (contract["allreduces_per_iter"],
                contract["halo_exchanges_per_iter"])

    def ppcg_expected(inner, depth):
        def expected(contract):
            halos = (contract["halo_exchanges_per_iter"]
                     + math.ceil(inner / depth)
                     * contract.get("halo_exchanges_per_inner_step", 0))
            return contract["allreduces_per_iter"], halos
        return expected

    tag = f"[kernels={backend}]"
    return [
        VerifySpec(
            f"cg{tag}", "repro.solvers.cg", halo=1, iters=(4, 12),
            run=lambda op, b, bounds, k, guard=None: cg_solve(
                op.with_kernels(backend), b, eps=EPS_NEVER, max_iters=k,
                guard=guard),
            expected=per_iter, detail=f"kernel backend {backend}"),
        VerifySpec(
            f"cg_fused{tag}", "repro.solvers.cg_fused", halo=1,
            iters=(4, 12),
            run=lambda op, b, bounds, k, guard=None: cg_fused_solve(
                op.with_kernels(backend), b, eps=EPS_NEVER, max_iters=k),
            expected=per_iter, detail=f"kernel backend {backend}"),
        VerifySpec(
            f"jacobi{tag}", "repro.solvers.jacobi", halo=1, iters=(5, 15),
            run=lambda op, b, bounds, k, guard=None: jacobi_solve(
                op.with_kernels(backend), b, eps=EPS_NEVER, max_iters=k),
            expected=per_iter, detail=f"kernel backend {backend}"),
        VerifySpec(
            f"ppcg{tag}", "repro.solvers.ppcg", halo=1, iters=(3, 9),
            run=lambda op, b, bounds, k, guard=None: ppcg_solve(
                op.with_kernels(backend), b, eps=EPS_NEVER, max_iters=k,
                inner_steps=4, warmup_iters=8, bounds=bounds, guard=guard),
            expected=ppcg_expected(inner=4, depth=1),
            detail=f"inner_steps=4, kernel backend {backend}"),
    ]


def _measure(spec: VerifySpec, n: int,
             resilience: bool = False,
             integrity: bool = False,
             sanitize: bool = False) -> tuple[float, float, int]:
    """Per-iteration (allreduces, halos) for one spec via window deltas.

    With ``resilience=True`` the solve is routed through the canonical
    resilient stack (``InstrumentedComm(RetryingComm(FaultyComm(...)))``
    with a disabled :class:`~repro.resilience.faults.FaultPlan`) instead
    of a bare instrumented communicator — proving the retry/injection
    layers are contract-transparent when no faults fire.

    ``integrity=True`` additionally inserts the checksummed-envelope
    layer (:class:`~repro.resilience.integrity.ChecksumComm`) into the
    stack *and* runs the solve under a durably checkpointing
    :class:`~repro.resilience.guard.SolverGuard` (interval 5, shards in a
    throwaway directory) — proving that checksum framing, duplicate-lane
    reductions and checkpointing leave the first-attempt per-iteration
    communication budget untouched (recovery-path collectives are logged
    under :data:`~repro.utils.events.RECOVERY_KIND` and therefore do not
    pollute the measured counts).

    ``sanitize=True`` is the strongest configuration: it forces the full
    resilience + integrity stack on, wraps that stack outermost in
    :class:`~repro.comm.sanitize.SanitizerComm`, prefers the spec's
    residual-replacement variant of the run when one exists, and asserts
    p2p quiescence after each solve.  A contract mismatch here means the
    sanitizer is not transparent; a
    :class:`~repro.utils.errors.SanitizerError` means the solver's own
    communication pattern tripped a runtime check.
    """
    from repro.comm import EventWindow, InstrumentedComm, SerialComm
    from repro.mesh import Field, decompose
    from repro.solvers import StencilOperator2D
    from repro.solvers.eigen import EigenBounds
    from repro.testing import crooked_pipe_system
    from repro.utils import EventLog

    if sanitize:
        resilience = True
        integrity = True

    grid, kxg, kyg, bg = crooked_pipe_system(n)
    bounds = EigenBounds(1.0, _gershgorin_lam_max(kxg, kyg))

    def one_run(max_iters: int) -> tuple[int, int, int]:
        log = EventLog()
        guard = None
        if resilience or integrity:
            from repro.resilience import FaultPlan, build_resilient_comm
            comm = build_resilient_comm(SerialComm(), FaultPlan.disabled(),
                                        events=log,
                                        integrity=integrity).comm
        else:
            comm = InstrumentedComm(SerialComm(), log)
        if sanitize:
            from repro.comm import SanitizerComm
            comm = SanitizerComm(comm)
        if integrity:
            import tempfile

            from repro.resilience import SolverCheckpointStore
            from repro.resilience.guard import SolverGuard
            store = SolverCheckpointStore(tempfile.mkdtemp(
                prefix="repro-verify-"), rank=0)
            guard = SolverGuard(checkpoint_interval=5, store=store)
        tile = decompose(grid, 1)[0]
        op = StencilOperator2D.from_global_faces(
            tile, spec.halo, kxg, kyg, comm, events=log)
        b = Field.from_global(tile, spec.halo, bg)
        run = (spec.run_replaced
               if sanitize and spec.run_replaced is not None else spec.run)
        with EventWindow(log) as w:
            result = run(op, b, bounds, max_iters, guard=guard)
        if sanitize:
            comm.check_quiescent()
        return (w.count_kind("allreduce"), w.count_kind("halo_exchange"),
                result.iterations)

    ar1, halo1, it1 = one_run(spec.iters[0])
    ar2, halo2, it2 = one_run(spec.iters[1])
    d_iter = it2 - it1
    if d_iter <= 0:
        raise RuntimeError(
            f"verify[{spec.name}]: iteration counts did not increase "
            f"({it1} -> {it2}); cannot difference runs")
    return (ar2 - ar1) / d_iter, (halo2 - halo1) / d_iter, d_iter


def verify_contracts(n: int = 32,
                     specs: list[VerifySpec] | None = None,
                     names: list[str] | None = None,
                     resilience: bool = False,
                     integrity: bool = False,
                     sanitize: bool = False) -> list[VerifyReport]:
    """Measure every solver configuration against its ``COMM_CONTRACT``.

    ``resilience=True`` routes each measurement through the resilient
    communicator stack with fault injection disabled (see
    :func:`_measure`); any contract drift introduced by the wrappers
    shows up as an ordinary verify mismatch.  ``integrity=True`` extends
    the stack with checksummed envelopes and a durably checkpointing
    guard — the strongest transparency statement: integrity + durability
    machinery must not change the first-attempt communication budget.
    ``sanitize=True`` stacks the runtime SPMD sanitizer outermost over
    the full resilience + integrity stack (implying both), switches
    residual replacement on where the solver supports it, and checks p2p
    quiescence — the contract must still hold bit-for-bit under every
    watchdog and fingerprint check.
    """
    from repro.analysis.contracts import validate_contract

    specs = specs if specs is not None else default_specs()
    if names:
        known = {s.name for s in specs} | {s.name.split("[")[0] for s in specs}
        unknown = sorted(set(names) - known)
        if unknown:
            raise ValueError(
                f"unknown solver name(s) {unknown}; "
                f"known: {sorted(known)}")
        specs = [s for s in specs
                 if s.name in names or s.name.split("[")[0] in names]
    reports = []
    for spec in specs:
        module = importlib.import_module(spec.module)
        contract = getattr(module, "COMM_CONTRACT", None)
        if contract is None or validate_contract(contract):
            reports.append(VerifyReport(
                name=spec.name, module=spec.module, iterations=0,
                measured_allreduces=math.nan, measured_halos=math.nan,
                expected_allreduces=math.nan, expected_halos=math.nan,
                detail="missing or invalid COMM_CONTRACT"))
            continue
        measured_ar, measured_halo, d_iter = _measure(
            spec, n, resilience=resilience, integrity=integrity,
            sanitize=sanitize)
        expected_ar, expected_halo = spec.expected(contract)
        detail = spec.detail
        if sanitize:
            extra = "sanitized full stack"
            if spec.run_replaced is not None:
                extra += ", residual replacement on"
            detail = f"{detail}, {extra}" if detail else extra
        elif integrity:
            detail = (f"{detail}, checksummed+checkpointing stack" if detail
                      else "checksummed+checkpointing stack")
        elif resilience:
            detail = f"{detail}, resilient stack" if detail \
                else "resilient stack"
        reports.append(VerifyReport(
            name=spec.name, module=spec.module, iterations=d_iter,
            measured_allreduces=measured_ar, measured_halos=measured_halo,
            expected_allreduces=float(expected_ar),
            expected_halos=float(expected_halo),
            detail=detail))
    return reports
