"""SPMD correctness rules (RPR009-RPR011).

Static side of the SPMD sanitizer (the dynamic side lives in
:mod:`repro.comm.sanitize`).  Three rules police the bug classes that hide
in decomposed solver code until a hang at scale:

- ``RPR009`` — *collective divergence*: a collective call (``allreduce``,
  ``bcast``, ``gather``, ``allgather``, ``barrier``, ...) guarded by
  rank-dependent control flow (``if comm.rank == 0: comm.allreduce(...)``),
  including transitive variants where the guarded call reaches the
  collective through a module-local helper, rank-dependent loops, and
  collectives placed after a rank-dependent early return.  Branches whose
  collective signatures match exactly (``bcast`` in both arms of an
  ``if rank == root``) are symmetric and therefore clean.
- ``RPR010`` — *send/recv tag and peer mismatch* across a function and its
  module-local callees: every canonicalized tag that is sent must also be
  received (and vice versa); for tile-neighbour peers (``t.left`` /
  ``t.right`` / ... ) the peer sets must balance and the tag received from
  a neighbour must equal a tag sent toward the *opposite* neighbour (the
  halo-exchange direction invariant).  Functions whose p2p calls sit under
  rank-dependent guards (master/worker choreography) are skipped — the
  matching side lives in another rank's control flow.
- ``RPR011`` — *buffer aliasing on in-flight nonblocking ops*: posting a
  view via ``isend`` and mutating the underlying array before the matching
  ``wait()``, plus requests that are dropped without ever being waited on
  or stored.  Requests that escape (appended to a pending list, returned,
  passed on) are conservatively trusted.

All three rules skip paths matching ``spmd-exempt-paths`` (default
``*/comm/*.py``): the communication substrate itself is legitimately
rank-dependent — it *implements* the collectives these rules reason about.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.costmodel import dotted_parts
from repro.analysis.rules import _functions

#: Attribute names treated as collective operations on a communicator.
COLLECTIVE_ATTRS = frozenset({
    "allreduce", "iallreduce", "reduce", "bcast", "gather", "allgather",
    "barrier", "scan",
})
#: Point-to-point send / receive spellings.
SEND_ATTRS = frozenset({"send", "isend"})
RECV_ATTRS = frozenset({"recv", "irecv"})

#: Tile-neighbour attribute names with their opposite direction — used by
#: RPR010's halo direction invariant (a receive from ``left`` must carry a
#: tag that is sent toward ``right``, etc.).
NEIGHBOR_OPPOSITE = {
    "left": "right", "right": "left",
    "down": "up", "up": "down",
    "back": "front", "front": "back",
}

#: Methods that mutate a NumPy array in place (receiver-side RPR011 check).
MUTATING_METHODS = frozenset({
    "fill", "sort", "put", "itemset", "resize", "setfield", "partition",
})


def _receiver_parts(call: ast.Call) -> list[str] | None:
    """Dotted receiver of an attribute call (``None`` for plain names)."""
    parts = dotted_parts(call.func)
    if parts is None or len(parts) < 2:
        return None
    return parts[:-1]


def _is_comm_call(call: ast.Call, attrs: frozenset[str]) -> bool:
    """True when ``call`` is ``<comm-ish>.<attr>(...)`` for ``attr`` in
    ``attrs``.  A receiver is comm-ish when any segment of its dotted path
    contains ``comm`` (``comm``, ``self.comm``, ``op.comm``, ``_comm``);
    wrapper-internal receivers (``self.inner``) are deliberately not."""
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr in attrs):
        return False
    receiver = _receiver_parts(call)
    return receiver is not None and any("comm" in seg for seg in receiver)


def _mentions_rank(expr: ast.AST, tainted: frozenset[str] | set[str]) -> bool:
    """True when ``expr`` reads ``<comm-ish>.rank`` or a tainted name."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            parts = dotted_parts(node)
            if parts and any("comm" in seg for seg in parts[:-1]):
                return True
        elif isinstance(node, ast.Name) and node.id in tainted:
            return True
    return False


def _rank_tainted_names(fn: ast.AST) -> set[str]:
    """Names assigned (transitively) from a comm rank within ``fn``."""
    tainted: set[str] = set()
    assigns = [n for n in ast.walk(fn)
               if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign))]
    changed = True
    while changed:
        changed = False
        for node in assigns:
            value = getattr(node, "value", None)
            if value is None or not _mentions_rank(value, tainted):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Name) and t.id not in tainted:
                    tainted.add(t.id)
                    changed = True
    return tainted


def _walk_no_defs(node: ast.AST):
    """``ast.walk`` that does not descend into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    yield node
    while stack:
        n = stack.pop()
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.ClassDef, ast.Lambda)):
            continue
        yield n
        stack.extend(ast.iter_child_nodes(n))


def _const_token(node: ast.AST | None,
                 consts: dict[str, object]) -> str:
    """Canonical string for a tag/peer expression.

    Integer and string constants canonicalize to their value, names bound
    to module-level integer constants resolve through ``consts``, and
    everything else canonicalizes symbolically via ``ast.unparse`` — so
    ``_TAGS[lo_name]`` on the send side matches ``_TAGS[lo_name]`` on the
    receive side even though the runtime value is unknown.
    """
    if node is None:
        return "0"
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Name) and node.id in consts:
        return repr(consts[node.id])
    try:
        return " ".join(ast.unparse(node).split())
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return f"<expr@{getattr(node, 'lineno', 0)}>"


def _module_consts(tree: ast.Module) -> dict[str, object]:
    """Module-level ``NAME = <int|str constant>`` bindings (incl. tuples)."""
    consts: dict[str, object] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if (len(node.targets) == 1 and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, (int, str))):
            consts[node.targets[0].id] = node.value.value
        elif (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(node.targets[0].elts) == len(node.value.elts)):
            for t, v in zip(node.targets[0].elts, node.value.elts):
                if (isinstance(t, ast.Name) and isinstance(v, ast.Constant)
                        and isinstance(v.value, (int, str))):
                    consts[t.id] = v.value
    return consts


def _call_arg(call: ast.Call, pos: int, kw: str) -> ast.AST | None:
    """Positional-or-keyword argument lookup."""
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    if len(call.args) > pos:
        return call.args[pos]
    return None


def _local_helpers(tree: ast.Module) -> dict[str, ast.AST]:
    """Unambiguous local function/method name -> def node (``None``-free)."""
    seen: dict[str, ast.AST | None] = {}
    for qual, fn in _functions(tree):
        name = qual.split(".")[-1]
        seen[name] = None if name in seen else fn
    return {k: v for k, v in seen.items() if v is not None}


def _helper_name(call: ast.Call,
                 helpers: dict[str, ast.AST]) -> str | None:
    """Name of the module-local helper a call resolves to, if any."""
    if isinstance(call.func, ast.Name) and call.func.id in helpers:
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        parts = dotted_parts(call.func)
        if (parts and len(parts) == 2 and parts[0] == "self"
                and parts[1] in helpers):
            return parts[1]
    return None


class _CollectiveIndex:
    """Transitive collective signatures of module-local helpers."""

    def __init__(self, tree: ast.Module):
        self.helpers = _local_helpers(tree)
        self._memo: dict[str, list[str]] = {}
        self._stack: set[str] = set()

    def signature_of(self, name: str) -> list[str]:
        if name in self._memo:
            return self._memo[name]
        fn = self.helpers.get(name)
        if fn is None or name in self._stack:
            return []
        self._stack.add(name)
        sig = [tok for tok, _node in _signature(fn.body, self)]
        self._stack.discard(name)
        self._memo[name] = sig
        return sig


def _collective_token(call: ast.Call) -> str:
    """Signature token for one collective call (op refines allreduce)."""
    kind = call.func.attr  # type: ignore[attr-defined]
    if kind in {"allreduce", "iallreduce", "reduce"}:
        op_node = _call_arg(call, 1, "op")
        op = (op_node.value if isinstance(op_node, ast.Constant) else "sum")
        return f"{kind}[{op}]"
    return kind


def _signature(stmts: list[ast.stmt],
               index: _CollectiveIndex) -> list[tuple[str, ast.AST]]:
    """Ordered collective signature of a statement block.

    Each element is ``(token, node)`` where the node is the call site — a
    direct collective call, or the call to a local helper that performs
    collectives (transitive, resolved through ``index``).
    """
    out: list[tuple[str, ast.AST]] = []
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(stmt, ast.If):
            out.extend(_expr_signature(stmt.test, index))
            out.extend(_signature(stmt.body, index))
            out.extend(_signature(stmt.orelse, index))
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            out.extend(_expr_signature(head, index))
            out.extend(_signature(stmt.body, index))
            out.extend(_signature(stmt.orelse, index))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                out.extend(_expr_signature(item.context_expr, index))
            out.extend(_signature(stmt.body, index))
        elif isinstance(stmt, ast.Try):
            out.extend(_signature(stmt.body, index))
            for h in stmt.handlers:
                out.extend(_signature(h.body, index))
            out.extend(_signature(stmt.orelse, index))
            out.extend(_signature(stmt.finalbody, index))
        else:
            out.extend(_expr_signature(stmt, index))
    return out


def _expr_signature(node: ast.AST | None,
                    index: _CollectiveIndex) -> list[tuple[str, ast.AST]]:
    """Collective tokens reachable from one simple statement/expression."""
    if node is None:
        return []
    out: list[tuple[str, ast.AST]] = []
    for n in _walk_no_defs(node):
        if not isinstance(n, ast.Call):
            continue
        if _is_comm_call(n, COLLECTIVE_ATTRS):
            out.append((_collective_token(n), n))
            continue
        helper = _helper_name(n, index.helpers)
        if helper is not None:
            for tok in index.signature_of(helper):
                out.append((tok, n))
    return out


def _terminates(block: list[ast.stmt]) -> bool:
    """True when the block unconditionally leaves the enclosing flow."""
    return any(isinstance(s, (ast.Return, ast.Raise, ast.Break, ast.Continue))
               for s in block)


@register
class CollectiveDivergenceRule(Rule):
    code = "RPR009"
    name = "collective-divergence"
    description = ("collectives must be reached by every rank: no "
                   "rank-dependent guard around allreduce/bcast/gather/"
                   "barrier (directly, through local helpers, in "
                   "rank-dependent loops, or after a rank-dependent early "
                   "return) unless both branches issue the same collective "
                   "sequence")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.is_spmd_exempt(ctx.path):
            return
        index = _CollectiveIndex(ctx.tree)
        for qualname, fn in _functions(ctx.tree):
            tainted = _rank_tainted_names(fn)
            yield from self._check_block(ctx, qualname, fn.body, tainted,
                                         index)

    def _check_block(self, ctx: ModuleContext, qualname: str,
                     stmts: list[ast.stmt], tainted: set[str],
                     index: _CollectiveIndex) -> Iterator[Finding]:
        diverged_at: ast.If | None = None
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if diverged_at is not None:
                for tok, node in _signature([stmt], index):
                    yield ctx.finding(
                        self.code,
                        f"collective {tok} in {qualname} runs after a "
                        f"rank-dependent early exit (guard at line "
                        f"{diverged_at.test.lineno}): ranks taking the "
                        "exit never reach it — deadlock",
                        node=node, symbol=qualname)
                continue
            if isinstance(stmt, ast.If) and _mentions_rank(stmt.test,
                                                           tainted):
                if _terminates(stmt.body) != _terminates(stmt.orelse):
                    # Symmetric early exit — ``if rank == 0: work();
                    # barrier(); return`` with the fall-through path
                    # issuing the same collective sequence — is legitimate
                    # SPMD style: compare the terminating branch against
                    # the continuation (other branch + rest of block).
                    term, cont = ((stmt.body, stmt.orelse)
                                  if _terminates(stmt.body)
                                  else (stmt.orelse, stmt.body))
                    kinds_term = [t for t, _ in _signature(term, index)]
                    kinds_cont = [t for t, _ in _signature(
                        list(cont) + list(stmts[i + 1:]), index)]
                    if kinds_term == kinds_cont:
                        continue
                sig_body = _signature(stmt.body, index)
                sig_else = _signature(stmt.orelse, index)
                kinds_body = [t for t, _ in sig_body]
                kinds_else = [t for t, _ in sig_else]
                if kinds_body != kinds_else:
                    p = 0
                    while (p < len(kinds_body) and p < len(kinds_else)
                           and kinds_body[p] == kinds_else[p]):
                        p += 1
                    for tok, node in sig_body[p:] + sig_else[p:]:
                        yield ctx.finding(
                            self.code,
                            f"collective {tok} in {qualname} is guarded "
                            f"by a rank-dependent condition (line "
                            f"{stmt.test.lineno}) with no matching "
                            "collective on the other branch: ranks "
                            "diverge — deadlock",
                            node=node, symbol=qualname)
                if _terminates(stmt.body) != _terminates(stmt.orelse):
                    diverged_at = stmt
                continue
            if isinstance(stmt, ast.While) and _mentions_rank(stmt.test,
                                                              tainted):
                for tok, node in _signature(stmt.body, index):
                    yield ctx.finding(
                        self.code,
                        f"collective {tok} in {qualname} sits inside a "
                        f"loop with a rank-dependent bound (line "
                        f"{stmt.test.lineno}): ranks iterate different "
                        "counts — deadlock",
                        node=node, symbol=qualname)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                    and _mentions_rank(stmt.iter, tainted):
                for tok, node in _signature(stmt.body, index):
                    yield ctx.finding(
                        self.code,
                        f"collective {tok} in {qualname} sits inside a "
                        f"loop iterating a rank-dependent range (line "
                        f"{stmt.iter.lineno}) — deadlock",
                        node=node, symbol=qualname)
                continue
            # Uniform control flow: recurse into compound statements.
            if isinstance(stmt, ast.If):
                yield from self._check_block(ctx, qualname, stmt.body,
                                             tainted, index)
                yield from self._check_block(ctx, qualname, stmt.orelse,
                                             tainted, index)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._check_block(ctx, qualname, stmt.body,
                                             tainted, index)
                yield from self._check_block(ctx, qualname, stmt.orelse,
                                             tainted, index)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from self._check_block(ctx, qualname, stmt.body,
                                             tainted, index)
            elif isinstance(stmt, ast.Try):
                yield from self._check_block(ctx, qualname, stmt.body,
                                             tainted, index)
                for h in stmt.handlers:
                    yield from self._check_block(ctx, qualname, h.body,
                                                 tainted, index)
                yield from self._check_block(ctx, qualname, stmt.orelse,
                                             tainted, index)
                yield from self._check_block(ctx, qualname, stmt.finalbody,
                                             tainted, index)


# -- RPR010 --------------------------------------------------------------------


class _P2PSummary:
    """Canonicalized send/recv tags and peers of one function."""

    def __init__(self) -> None:
        self.send_tags: dict[str, ast.AST] = {}
        self.recv_tags: dict[str, ast.AST] = {}
        self.send_peers: dict[str, ast.AST] = {}
        self.recv_peers: dict[str, ast.AST] = {}
        # (peer_token, tag_token) pairs, recv side only (direction check).
        self.recv_pairs: list[tuple[str, str, ast.AST]] = []
        self.send_pairs: list[tuple[str, str, ast.AST]] = []
        self.guarded = False
        self.calls: set[str] = set()

    def has_both(self) -> bool:
        return bool(self.send_tags) and bool(self.recv_tags)

    def merge(self, other: "_P2PSummary") -> None:
        for mine, theirs in (
                (self.send_tags, other.send_tags),
                (self.recv_tags, other.recv_tags),
                (self.send_peers, other.send_peers),
                (self.recv_peers, other.recv_peers)):
            for tok, node in theirs.items():
                mine.setdefault(tok, node)
        self.recv_pairs.extend(other.recv_pairs)
        self.send_pairs.extend(other.send_pairs)
        self.guarded = self.guarded or other.guarded


def _neighbor_dir(peer_token: str) -> str | None:
    """``"t.left"`` -> ``"left"`` when the peer is a tile-neighbour attr."""
    leaf = peer_token.rsplit(".", 1)[-1]
    return leaf if leaf in NEIGHBOR_OPPOSITE else None


def _collect_p2p(fn: ast.AST, consts: dict[str, object],
                 helpers: dict[str, ast.AST],
                 tainted: set[str]) -> _P2PSummary:
    out = _P2PSummary()

    def scan(stmts: list[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            sub_guarded = guarded
            if isinstance(stmt, ast.If):
                if _mentions_rank(stmt.test, tainted):
                    sub_guarded = True
                scan_simple(stmt.test, guarded)
                scan(stmt.body, sub_guarded)
                scan(stmt.orelse, sub_guarded)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                head = (stmt.test if isinstance(stmt, ast.While)
                        else stmt.iter)
                if _mentions_rank(head, tainted):
                    sub_guarded = True
                scan_simple(head, guarded)
                scan(stmt.body, sub_guarded)
                scan(stmt.orelse, sub_guarded)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    scan_simple(item.context_expr, guarded)
                scan(stmt.body, guarded)
                continue
            if isinstance(stmt, ast.Try):
                scan(stmt.body, guarded)
                for h in stmt.handlers:
                    scan(h.body, guarded)
                scan(stmt.orelse, guarded)
                scan(stmt.finalbody, guarded)
                continue
            scan_simple(stmt, guarded)

    def scan_simple(node: ast.AST | None, guarded: bool) -> None:
        if node is None:
            return
        for n in _walk_no_defs(node):
            if not isinstance(n, ast.Call):
                continue
            helper = _helper_name(n, helpers)
            if helper is not None:
                out.calls.add(helper)
            if _is_comm_call(n, SEND_ATTRS):
                tag = _const_token(_call_arg(n, 2, "tag"), consts)
                peer = _const_token(_call_arg(n, 1, "dest"), consts)
                out.send_tags.setdefault(tag, n)
                out.send_peers.setdefault(peer, n)
                out.send_pairs.append((peer, tag, n))
                out.guarded = out.guarded or guarded
            elif _is_comm_call(n, RECV_ATTRS):
                tag = _const_token(_call_arg(n, 1, "tag"), consts)
                peer = _const_token(_call_arg(n, 0, "source"), consts)
                out.recv_tags.setdefault(tag, n)
                out.recv_peers.setdefault(peer, n)
                out.recv_pairs.append((peer, tag, n))
                out.guarded = out.guarded or guarded
            elif (_is_comm_call(n, frozenset({"sendrecv"}))):
                tag = _const_token(_call_arg(n, 3, "tag"), consts)
                out.send_tags.setdefault(tag, n)
                out.recv_tags.setdefault(tag, n)

    scan(fn.body, False)
    return out


@register
class TagPeerMismatchRule(Rule):
    code = "RPR010"
    name = "p2p-tag-mismatch"
    description = ("send/recv tags and neighbour peers must balance across "
                   "a function and its module-local callees: every tag "
                   "sent is received (and vice versa), every tile "
                   "neighbour sent to is received from, and a tag received "
                   "from a neighbour matches a tag sent toward the "
                   "opposite neighbour (halo direction invariant)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.is_spmd_exempt(ctx.path):
            return
        consts = _module_consts(ctx.tree)
        helpers = _local_helpers(ctx.tree)
        summaries: dict[str, _P2PSummary] = {}
        qualnames: dict[str, str] = {}
        for qual, fn in _functions(ctx.tree):
            name = qual.split(".")[-1]
            if name in helpers and helpers[name] is fn:
                tainted = _rank_tainted_names(fn)
                summaries[name] = _collect_p2p(fn, consts, helpers, tainted)
                qualnames[name] = qual

        merged_memo: dict[str, _P2PSummary] = {}

        def merged(name: str, stack: frozenset[str]) -> _P2PSummary:
            if name in merged_memo:
                return merged_memo[name]
            base = summaries.get(name)
            total = _P2PSummary()
            if base is None or name in stack:
                return total
            total.merge(base)
            total.guarded = base.guarded
            for callee in sorted(base.calls):
                total.merge(merged(callee, stack | {name}))
            merged_memo[name] = total
            return total

        reported: set[tuple[int, int, str]] = set()

        def emit(node: ast.AST, qualname: str, message: str):
            key = (getattr(node, "lineno", 0),
                   getattr(node, "col_offset", 0), message)
            if key in reported:
                return None
            reported.add(key)
            return ctx.finding(self.code, message, node=node,
                              symbol=qualname)

        for name in summaries:
            m = merged(name, frozenset())
            if not m.has_both() or m.guarded:
                continue
            qual = qualnames[name]
            for tok in sorted(set(m.send_tags) - set(m.recv_tags)):
                f = emit(m.send_tags[tok], qual,
                         f"tag {tok} is sent in {qual} (or a callee) but "
                         "never received on any matching channel — the "
                         "message is orphaned and the peer's receive "
                         "deadlocks")
                if f:
                    yield f
            for tok in sorted(set(m.recv_tags) - set(m.send_tags)):
                f = emit(m.recv_tags[tok], qual,
                         f"tag {tok} is received in {qual} (or a callee) "
                         "but never sent — the receive blocks forever")
                if f:
                    yield f
            send_nb = {t for t in m.send_peers if _neighbor_dir(t)}
            recv_nb = {t for t in m.recv_peers if _neighbor_dir(t)}
            for tok in sorted(send_nb - recv_nb):
                f = emit(m.send_peers[tok], qual,
                         f"neighbour {tok} is sent to in {qual} but never "
                         "received from — the exchange is one-sided")
                if f:
                    yield f
            for tok in sorted(recv_nb - send_nb):
                f = emit(m.recv_peers[tok], qual,
                         f"neighbour {tok} is received from in {qual} but "
                         "never sent to — the exchange is one-sided")
                if f:
                    yield f
            # Direction invariant: a tag received from neighbour X must be
            # sent toward opposite(X) somewhere in the call graph.
            for peer_tok, tag_tok, node in m.recv_pairs:
                direction = _neighbor_dir(peer_tok)
                if direction is None:
                    continue
                opposite = peer_tok[:-len(direction)] \
                    + NEIGHBOR_OPPOSITE[direction]
                sent_toward_opposite = {
                    t for p, t, _n in m.send_pairs if p == opposite}
                if not sent_toward_opposite:
                    continue
                if tag_tok not in sent_toward_opposite:
                    f = emit(node, qual,
                             f"recv from {peer_tok} uses tag {tag_tok}, "
                             f"but the symmetric send toward {opposite} "
                             f"uses tag(s) "
                             f"{', '.join(sorted(sent_toward_opposite))} "
                             "— crossed halo directions deadlock")
                    if f:
                        yield f


# -- RPR011 --------------------------------------------------------------------


def _buffer_base(expr: ast.AST) -> str | None:
    """Base array token of a message-buffer expression (``a[0, :]`` -> ``a``,
    ``f.data[r]`` -> ``f.data``); ``None`` for fresh temporaries (calls)."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Call):
        # np.ascontiguousarray(view) copies: the send buffer is fresh.
        return None
    parts = dotted_parts(node)
    return ".".join(parts) if parts else None


def _mutation_targets(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """Base tokens mutated by one simple statement."""
    out: list[tuple[str, ast.AST]] = []
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            if isinstance(t, ast.Subscript):
                base = _buffer_base(t)
                if base:
                    out.append((base, t))
    elif isinstance(stmt, ast.AugAssign):
        base = _buffer_base(stmt.target)
        if base:
            out.append((base, stmt.target))
    for n in _walk_no_defs(stmt):
        if (isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
                and n.func.attr in MUTATING_METHODS):
            parts = dotted_parts(n.func)
            if parts:
                out.append((".".join(parts[:-1]), n))
    return out


@register
class NonblockingAliasRule(Rule):
    code = "RPR011"
    name = "isend-buffer-alias"
    description = ("no mutation of an array that backs an in-flight isend "
                   "before the matching wait(), and no nonblocking request "
                   "dropped without wait() (requests that escape into "
                   "containers/returns are trusted)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.is_spmd_exempt(ctx.path):
            return
        for qualname, fn in _functions(ctx.tree):
            yield from self._check_fn(ctx, qualname, fn)

    def _check_fn(self, ctx: ModuleContext, qualname: str,
                  fn: ast.AST) -> Iterator[Finding]:
        # req name -> (kind, buffer base or None, posting call node)
        pending: dict[str, tuple[str, str | None, ast.AST]] = {}
        findings: list[Finding] = []

        def process(stmt: ast.stmt) -> None:
            # 1. completions: req.wait() / req.test()
            for n in _walk_no_defs(stmt):
                if (isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Attribute)
                        and n.func.attr in {"wait", "test"}
                        and isinstance(n.func.value, ast.Name)
                        and n.func.value.id in pending):
                    pending.pop(n.func.value.id)
            # 2. mutations of buffers backing in-flight isends
            for base, node in _mutation_targets(stmt):
                for req, (kind, buf, posted) in list(pending.items()):
                    if kind == "isend" and buf is not None and base == buf:
                        findings.append(ctx.finding(
                            self.code,
                            f"array {buf!r} backs the isend posted at "
                            f"line {posted.lineno} ({req}) and is mutated "
                            "before the matching wait(): the in-flight "
                            "message may ship the mutated data",
                            node=node, symbol=qualname))
                        pending.pop(req)
            # 3. escapes: any other use of a pending request name
            escaped: set[str] = set()
            values: list[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                values.append(stmt.value)
                for t in stmt.targets:
                    if not isinstance(t, ast.Name):
                        values.append(t)
            elif isinstance(stmt, (ast.Expr, ast.Return, ast.AugAssign)):
                v = getattr(stmt, "value", None)
                if v is not None:
                    values.append(v)
            else:
                values.append(stmt)
            for v in values:
                for n in _walk_no_defs(v):
                    if (isinstance(n, ast.Name) and n.id in pending
                            and not self._is_completion_receiver(n, v)):
                        escaped.add(n.id)
            for name in escaped:
                pending.pop(name, None)
            # 4. new requests
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)):
                call = stmt.value
                target = stmt.targets[0].id
                if _is_comm_call(call, frozenset({"isend"})):
                    self._flag_overwrite(ctx, qualname, target, pending,
                                         findings, stmt)
                    buf_node = _call_arg(call, 0, "obj")
                    pending[target] = (
                        "isend",
                        _buffer_base(buf_node) if buf_node is not None
                        else None,
                        call)
                elif _is_comm_call(call, frozenset({"irecv"})):
                    self._flag_overwrite(ctx, qualname, target, pending,
                                         findings, stmt)
                    pending[target] = ("irecv", None, call)

        def walk(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.If):
                    process(ast.Expr(stmt.test))
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    walk(stmt.body)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    for h in stmt.handlers:
                        walk(h.body)
                    walk(stmt.orelse)
                    walk(stmt.finalbody)
                else:
                    process(stmt)

        walk(fn.body)
        for req, (kind, _buf, posted) in pending.items():
            drop = ("the buffered message may never complete"
                    if kind == "isend"
                    else "the matching message is silently dropped")
            findings.append(ctx.finding(
                self.code,
                f"{kind} request {req!r} is never waited on, tested or "
                f"stored — {drop}",
                node=posted, symbol=qualname))
        yield from findings

    @staticmethod
    def _is_completion_receiver(name: ast.Name, root: ast.AST) -> bool:
        """True when ``name`` appears only as ``name.wait()``/``.test()``."""
        for n in ast.walk(root):
            if (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr in {"wait", "test"}
                    and n.func.value is name):
                return True
        return False

    @staticmethod
    def _flag_overwrite(ctx, qualname, target, pending, findings, stmt):
        if target in pending:
            kind, _buf, posted = pending.pop(target)
            findings.append(ctx.finding(
                "RPR011",
                f"pending {kind} request {target!r} (posted at line "
                f"{posted.lineno}) is overwritten without wait()",
                node=stmt, symbol=qualname))
