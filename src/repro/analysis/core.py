"""Rule framework and analysis engine.

A *rule* is a class with a stable error code (``RPR0xx``), registered in
:data:`RULE_REGISTRY`; the engine parses each file once into a
:class:`ModuleContext` and hands it to every enabled rule.  Findings can be
silenced inline (``# repro: ignore[RPR004]`` on the offending line) or via
the checked-in baseline file (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.analysis.config import AnalysisConfig

#: Code used for files the analyzer itself cannot process (syntax errors).
PARSE_ERROR_CODE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic, anchored to a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    symbol: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
        }


def fingerprints(findings: Iterable[Finding]) -> dict[Finding, str]:
    """Stable, line-number-independent identity for baselining.

    ``CODE:path:symbol:<occurrence>`` — the occurrence index disambiguates
    repeated findings of the same code within one symbol, while staying
    stable under unrelated edits that only shift line numbers.
    """
    seen: dict[tuple, int] = {}
    out: dict[Finding, str] = {}
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code)):
        key = (f.code, f.path, f.symbol)
        n = seen.get(key, 0)
        seen[key] = n + 1
        out[f] = f"{f.code}:{f.path}:{f.symbol or '-'}:{n}"
    return out


@dataclass
class ModuleContext:
    """Everything a rule needs about one parsed source file."""

    path: Path
    display_path: str
    source: str
    lines: list[str]
    tree: ast.Module
    config: AnalysisConfig
    is_solver_module: bool

    def finding(self, code: str, message: str, node: ast.AST | None = None,
                symbol: str = "", line: int | None = None) -> Finding:
        if line is None:
            line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(code=code, message=message, path=self.display_path,
                       line=line, col=col, symbol=symbol)


class Rule:
    """Base class: subclasses set ``code``/``name``/``description`` and
    implement :meth:`check`."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: Rules with ``solver_only`` True run only on solver modules.
    solver_only: bool = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    RULE_REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by code (imports rule modules on demand)."""
    _load_builtin_rules()
    return [RULE_REGISTRY[c] for c in sorted(RULE_REGISTRY)]


def _load_builtin_rules() -> None:
    # Imported lazily to avoid an import cycle (rule modules import core).
    from repro.analysis import contracts, rules, spmd  # noqa: F401


def public_solve_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    """Top-level public ``*_solve`` functions — the solver-module marker."""
    return [
        node for node in tree.body
        if isinstance(node, ast.FunctionDef)
        and node.name.endswith("_solve")
        and not node.name.startswith("_")
    ]


def build_context(path: Path, config: AnalysisConfig,
                  display_path: str | None = None) -> ModuleContext | Finding:
    """Parse one file; returns a context, or a parse-error finding."""
    display = display_path if display_path is not None else _display(path, config)
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return Finding(code=PARSE_ERROR_CODE, message=f"cannot analyze: {exc}",
                       path=display, line=getattr(exc, "lineno", 1) or 1)
    is_solver = (config.is_solver_path(path)
                 and bool(public_solve_functions(tree)))
    return ModuleContext(path=path, display_path=display, source=source,
                         lines=source.splitlines(), tree=tree, config=config,
                         is_solver_module=is_solver)


def _display(path: Path, config: AnalysisConfig) -> str:
    try:
        return path.resolve().relative_to(config.root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Iterable[str | Path],
                      config: AnalysisConfig | None = None) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    if config is not None:
        out = [p for p in out if not config.is_excluded(p)]
    return out


_SUPPRESS_MARK = "# repro: ignore"


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    """True when the finding's line carries a matching inline suppression."""
    if not 1 <= finding.line <= len(lines):
        return False
    line = lines[finding.line - 1]
    idx = line.find(_SUPPRESS_MARK)
    if idx < 0:
        return False
    rest = line[idx + len(_SUPPRESS_MARK):].strip()
    if rest.startswith("["):
        codes = rest[1:rest.index("]")] if "]" in rest else rest[1:]
        return finding.code in {c.strip() for c in codes.split(",")}
    return True  # blanket "# repro: ignore"


@dataclass
class AnalysisResult:
    """Outcome of one engine run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def all_raw(self) -> list[Finding]:
        return self.findings + self.baselined + self.suppressed


def analyze_paths(
    paths: Iterable[str | Path],
    config: AnalysisConfig | None = None,
    baseline: set[str] | None = None,
    rule_filter: Callable[[Rule], bool] | None = None,
) -> AnalysisResult:
    """Run every enabled rule over all ``.py`` files under ``paths``."""
    config = config if config is not None else AnalysisConfig()
    rules = [r for r in all_rules()
             if config.rule_enabled(r.code)
             and (rule_filter is None or rule_filter(r))]
    result = AnalysisResult()
    collected: list[tuple[Finding, list[str]]] = []
    for path in iter_python_files(paths, config):
        ctx = build_context(path, config)
        if isinstance(ctx, Finding):
            collected.append((ctx, []))
            continue
        result.files_checked += 1
        for rule in rules:
            if rule.solver_only and not ctx.is_solver_module:
                continue
            for f in rule.check(ctx):
                collected.append((f, ctx.lines))

    prints = fingerprints([f for f, _ in collected])
    for f, lines in sorted(collected,
                           key=lambda p: (p[0].path, p[0].line, p[0].code)):
        if _suppressed(f, lines):
            result.suppressed.append(f)
        elif baseline and prints[f] in baseline:
            result.baselined.append(f)
        else:
            result.findings.append(f)
    return result
