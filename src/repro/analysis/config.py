"""Analyzer configuration, read from ``[tool.repro-analysis]`` in pyproject.

All knobs have in-code defaults so the analyzer runs on any tree without a
config file (the test-suite exercises it on synthetic temp directories).
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

#: Receiver names whose method calls the cost model ignores: preconditioner
#: applications are accounted separately from the iteration budget (the
#: paper's budgets are for the un-preconditioned iteration skeleton), and
#: kernel-backend calls (``kernels``) are rank-local compute by contract
#: (:class:`repro.kernels.base.KernelBackend` has no communicator).
DEFAULT_IGNORE_RECEIVERS = frozenset(
    {"M", "local_M", "cheby", "precond", "preconditioner", "_inner",
     "kernels"})

#: Path globs (posix, matched against the file path) that mark *solver*
#: modules — only these are required to carry a ``COMM_CONTRACT``.
DEFAULT_SOLVER_GLOBS = ("*/solvers/*.py",)

#: Path globs of the sanctioned mixed-precision layer: RPR005 allows
#: single-precision dtypes *only* here (:mod:`repro.numerics` owns the
#: working-dtype knob; everywhere else a ``float32`` literal is still
#: accidental precision drift).
DEFAULT_MIXED_PRECISION_GLOBS = ("*/numerics/*.py",)

#: Path globs exempt from the SPMD rules (RPR009-RPR011): the comm
#: substrate itself implements the primitives those rules reason about
#: (rank-switched mailbox plumbing *is* its job, not a divergence bug).
DEFAULT_SPMD_EXEMPT_GLOBS = ("*/comm/*.py",)

#: Path globs excluded from analysis entirely.  Mutation fixtures are
#: deliberately-buggy rank programs checked in as rule test vectors; the
#: production gate must not trip over them.
DEFAULT_EXCLUDE_GLOBS = ("*/fixtures/*",)


@dataclass
class AnalysisConfig:
    """Resolved analyzer settings."""

    paths: tuple[str, ...] = ("src/repro",)
    baseline: str = "analysis-baseline.json"
    solver_globs: tuple[str, ...] = DEFAULT_SOLVER_GLOBS
    mixed_precision_globs: tuple[str, ...] = DEFAULT_MIXED_PRECISION_GLOBS
    spmd_exempt_globs: tuple[str, ...] = DEFAULT_SPMD_EXEMPT_GLOBS
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE_GLOBS
    disable: tuple[str, ...] = ()
    select: tuple[str, ...] = ()
    ignore_receivers: frozenset[str] = DEFAULT_IGNORE_RECEIVERS
    require_dtype: bool = False
    root: Path = field(default_factory=Path.cwd)

    def rule_enabled(self, code: str) -> bool:
        if self.select:
            return code in self.select
        return code not in self.disable

    def is_solver_path(self, path: Path) -> bool:
        posix = path.as_posix()
        return any(fnmatch.fnmatch(posix, g) for g in self.solver_globs)

    def is_mixed_precision_path(self, path: Path) -> bool:
        """True when ``path`` belongs to the sanctioned mixed-precision layer."""
        posix = path.as_posix()
        return any(fnmatch.fnmatch(posix, g)
                   for g in self.mixed_precision_globs)

    def is_spmd_exempt(self, path: Path) -> bool:
        """True when ``path`` is exempt from the SPMD rules (RPR009-011)."""
        posix = path.as_posix()
        return any(fnmatch.fnmatch(posix, g) for g in self.spmd_exempt_globs)

    def is_excluded(self, path: Path) -> bool:
        """True when ``path`` must not be analyzed at all."""
        posix = path.as_posix()
        return any(fnmatch.fnmatch(posix, g) for g in self.exclude)

    @classmethod
    def from_pyproject(cls, root: Path | None = None) -> "AnalysisConfig":
        """Load config from ``<root>/pyproject.toml`` (defaults if absent)."""
        root = Path(root) if root is not None else Path.cwd()
        pyproject = root / "pyproject.toml"
        table: dict = {}
        if pyproject.is_file():
            with open(pyproject, "rb") as fh:
                data = tomllib.load(fh)
            table = data.get("tool", {}).get("repro-analysis", {})
        return cls(
            paths=tuple(table.get("paths", ("src/repro",))),
            baseline=table.get("baseline", "analysis-baseline.json"),
            solver_globs=tuple(
                table.get("solver-paths", DEFAULT_SOLVER_GLOBS)),
            mixed_precision_globs=tuple(
                table.get("mixed-precision-paths",
                          DEFAULT_MIXED_PRECISION_GLOBS)),
            spmd_exempt_globs=tuple(
                table.get("spmd-exempt-paths", DEFAULT_SPMD_EXEMPT_GLOBS)),
            exclude=tuple(table.get("exclude", DEFAULT_EXCLUDE_GLOBS)),
            disable=tuple(table.get("disable", ())),
            select=tuple(table.get("select", ())),
            ignore_receivers=frozenset(
                table.get("ignore-receivers", DEFAULT_IGNORE_RECEIVERS)),
            require_dtype=bool(table.get("require-dtype", False)),
            root=root,
        )
