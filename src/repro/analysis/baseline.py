"""Baseline (suppression) file handling.

The baseline is a checked-in JSON file of finding fingerprints.  Findings
whose fingerprint appears in it are reported as *baselined* and do not
fail the run — this lets a rule land before every historical violation is
fixed, while still failing on anything new.  Fingerprints are
line-number-independent (``CODE:path:symbol:occurrence``), so unrelated
edits don't churn the file.  The shipped tree is clean: the initial
baseline is empty, and any future entry is a visible, diffable debt.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.core import Finding, fingerprints

FORMAT_VERSION = 1


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints from a baseline file (empty set when absent)."""
    path = Path(path)
    if not path.is_file():
        return set()
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"malformed baseline file {path}")
    return set(data["findings"])


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write the fingerprints of ``findings``; returns how many.

    Output is fully deterministic — sorted fingerprints, sorted keys, fixed
    indentation — so rewriting an unchanged tree is byte-identical and the
    checked-in file never churns spuriously.
    """
    prints = sorted(fingerprints(list(findings)).values())
    payload = {
        "version": FORMAT_VERSION,
        "tool": "repro.analysis",
        "findings": prints,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(prints)


def update_baseline(path: str | Path,
                    findings: Iterable[Finding]) -> tuple[int, int, int]:
    """Rewrite the baseline from current findings; return the delta.

    Returns ``(added, removed, kept)`` relative to the previous contents,
    so ``--update-baseline`` can report exactly what debt was incurred or
    retired.  The write itself goes through :func:`write_baseline` and is
    deterministic.
    """
    old = load_baseline(path)
    new = set(fingerprints(list(findings)).values())
    write_baseline(path, findings)
    return (len(new - old), len(old - new), len(new & old))
