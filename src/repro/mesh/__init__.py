"""Structured mesh: grids, rectangular decomposition, halo'd fields.

TeaLeaf stores cell-centred quantities on a regular 2D (or 3D) grid that is
spatially decomposed into rectangular tiles, one per MPI rank, each padded
with ``halo_depth`` layers of ghost cells.  This package provides:

- :class:`Grid2D` / :class:`Grid3D` — global grid geometry,
- :func:`decompose` — rank-count → tile layout with neighbour topology,
- :class:`Field` — a halo-padded cell-centred array with interior views,
- :class:`HaloExchanger` — depth-*d* ghost exchange over a communicator
  (the two-phase scheme that also fills corner halos, as required by the
  matrix powers kernel).
"""

from repro.mesh.grid import Grid2D, Grid3D
from repro.mesh.decomposition import Tile, decompose, tile_for_rank, choose_factors
from repro.mesh.decomposition3d import Tile3D, choose_factors_3d, decompose3d
from repro.mesh.field import Field
from repro.mesh.field3d import Field3D
from repro.mesh.halo import HaloExchanger, reflect_boundaries
from repro.mesh.halo3d import HaloExchanger3D

__all__ = [
    "Grid2D",
    "Grid3D",
    "Tile",
    "Tile3D",
    "decompose",
    "decompose3d",
    "tile_for_rank",
    "choose_factors",
    "choose_factors_3d",
    "Field",
    "Field3D",
    "HaloExchanger",
    "HaloExchanger3D",
    "reflect_boundaries",
]
