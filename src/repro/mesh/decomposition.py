"""Rectangular domain decomposition with neighbour topology.

TeaLeaf decomposes the global grid into a ``px`` x ``py`` grid of rectangular
tiles, one per MPI rank, choosing the factorisation of the rank count whose
tile aspect ratio best matches the mesh (minimising halo surface, hence
communication volume).  This module reproduces that scheme and additionally
exposes the neighbour topology each tile needs for halo exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.grid import Grid2D
from repro.utils.errors import DecompositionError


def choose_factors(nranks: int, nx: int, ny: int) -> tuple[int, int]:
    """Pick ``(px, py)`` with ``px*py == nranks`` minimising halo perimeter.

    The perimeter of cut edges for a ``px x py`` layout of an ``nx x ny``
    mesh is ``(px-1)*ny + (py-1)*nx``; we minimise it exactly over all
    factorisations (ties broken toward wider-in-x layouts, matching
    TeaLeaf's preference for contiguous rows).
    """
    if nranks < 1:
        raise DecompositionError(f"nranks must be >= 1, got {nranks}")
    best = None
    for px in range(1, nranks + 1):
        if nranks % px:
            continue
        py = nranks // px
        cut = (px - 1) * ny + (py - 1) * nx
        key = (cut, py)  # prefer fewer rows of ranks on ties
        if best is None or key < best[0]:
            best = (key, (px, py))
    return best[1]


@dataclass(frozen=True)
class Tile:
    """One rank's rectangular patch of the global grid.

    Attributes
    ----------
    rank:
        Owning rank id in ``[0, px*py)``; ranks are laid out row-major
        (x fastest), i.e. ``rank = cy*px + cx``.
    cx, cy:
        Tile coordinates in the process grid.
    px, py:
        Process-grid dimensions.
    x0, x1, y0, y1:
        Global half-open cell ranges ``[x0, x1) x [y0, y1)`` owned by
        this tile.
    """

    rank: int
    cx: int
    cy: int
    px: int
    py: int
    x0: int
    x1: int
    y0: int
    y1: int

    @property
    def nx(self) -> int:
        return self.x1 - self.x0

    @property
    def ny(self) -> int:
        return self.y1 - self.y0

    @property
    def shape(self) -> tuple[int, int]:
        """Local interior array shape ``(ny, nx)``."""
        return (self.ny, self.nx)

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    @property
    def global_slices(self) -> tuple[slice, slice]:
        """Slices selecting this tile from a global ``(ny, nx)`` array."""
        return (slice(self.y0, self.y1), slice(self.x0, self.x1))

    # -- neighbour topology -------------------------------------------------

    def _nbr(self, dx: int, dy: int) -> int | None:
        cx, cy = self.cx + dx, self.cy + dy
        if 0 <= cx < self.px and 0 <= cy < self.py:
            return cy * self.px + cx
        return None

    @property
    def left(self) -> int | None:
        """Rank owning the tile at smaller x, or None at the boundary."""
        return self._nbr(-1, 0)

    @property
    def right(self) -> int | None:
        return self._nbr(+1, 0)

    @property
    def down(self) -> int | None:
        """Rank owning the tile at smaller y, or None at the boundary."""
        return self._nbr(0, -1)

    @property
    def up(self) -> int | None:
        return self._nbr(0, +1)

    @property
    def neighbors(self) -> dict[str, int | None]:
        return {"left": self.left, "right": self.right,
                "down": self.down, "up": self.up}

    @property
    def n_neighbors(self) -> int:
        return sum(1 for r in self.neighbors.values() if r is not None)

    def extension(self, depth: int) -> dict[str, int]:
        """Extension amounts toward each neighbour for matrix-powers bounds.

        A side facing a physical boundary never extends (there is no fresh
        halo data there, and boundary face coefficients are zero).
        """
        return {
            side: (depth if nbr is not None else 0)
            for side, nbr in self.neighbors.items()
        }


def _split(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``n`` cells into ``parts`` contiguous near-equal ranges."""
    base, extra = divmod(n, parts)
    ranges, start = [], 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def decompose(grid: Grid2D, nranks: int,
              factors: tuple[int, int] | None = None) -> list[Tile]:
    """Decompose ``grid`` into one :class:`Tile` per rank.

    Parameters
    ----------
    grid:
        The global grid.
    nranks:
        Number of ranks; every rank must receive at least one cell in each
        direction, otherwise :class:`DecompositionError` is raised (the
        paper's strong-scaling limit: "barely four grid points per PE").
    factors:
        Optional explicit ``(px, py)`` override (must multiply to
        ``nranks``); by default chosen by :func:`choose_factors`.
    """
    if factors is None:
        px, py = choose_factors(nranks, grid.nx, grid.ny)
    else:
        px, py = factors
        if px * py != nranks:
            raise DecompositionError(
                f"factors {px}x{py} != nranks {nranks}")
    if px > grid.nx or py > grid.ny:
        raise DecompositionError(
            f"cannot give each of {px}x{py} ranks a nonempty tile of a "
            f"{grid.nx}x{grid.ny} grid")
    xranges = _split(grid.nx, px)
    yranges = _split(grid.ny, py)
    tiles = []
    for cy in range(py):
        for cx in range(px):
            rank = cy * px + cx
            x0, x1 = xranges[cx]
            y0, y1 = yranges[cy]
            tiles.append(Tile(rank=rank, cx=cx, cy=cy, px=px, py=py,
                              x0=x0, x1=x1, y0=y0, y1=y1))
    return tiles


def tile_for_rank(grid: Grid2D, nranks: int, rank: int,
                  factors: tuple[int, int] | None = None) -> Tile:
    """Convenience: the tile a given ``rank`` owns under :func:`decompose`."""
    if not 0 <= rank < nranks:
        raise DecompositionError(f"rank {rank} out of range [0,{nranks})")
    return decompose(grid, nranks, factors)[rank]
