"""3D rectangular (cuboid) domain decomposition.

The 3D analogue of :mod:`repro.mesh.decomposition`: the global grid is
split into a ``px x py x pz`` grid of cuboid tiles, choosing the rank
factorisation that minimises the total cut surface (halo volume).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.decomposition import _split
from repro.mesh.grid import Grid3D
from repro.utils.errors import DecompositionError

#: Side names, paired by axis: (low, high) in x, y, z.
SIDES_3D = ("left", "right", "down", "up", "back", "front")


def choose_factors_3d(nranks: int, nx: int, ny: int, nz: int
                      ) -> tuple[int, int, int]:
    """Pick ``(px, py, pz)`` minimising the cut surface."""
    if nranks < 1:
        raise DecompositionError(f"nranks must be >= 1, got {nranks}")
    best = None
    for px in range(1, nranks + 1):
        if nranks % px:
            continue
        rem = nranks // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            pz = rem // py
            cut = ((px - 1) * ny * nz + (py - 1) * nx * nz
                   + (pz - 1) * nx * ny)
            key = (cut, pz, py)
            if best is None or key < best[0]:
                best = (key, (px, py, pz))
    return best[1]


@dataclass(frozen=True)
class Tile3D:
    """One rank's cuboid patch; ``rank = (cz*py + cy)*px + cx``."""

    rank: int
    cx: int
    cy: int
    cz: int
    px: int
    py: int
    pz: int
    x0: int
    x1: int
    y0: int
    y1: int
    z0: int
    z1: int

    @property
    def nx(self) -> int:
        return self.x1 - self.x0

    @property
    def ny(self) -> int:
        return self.y1 - self.y0

    @property
    def nz(self) -> int:
        return self.z1 - self.z0

    @property
    def shape(self) -> tuple[int, int, int]:
        """Local interior array shape ``(nz, ny, nx)``."""
        return (self.nz, self.ny, self.nx)

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def global_slices(self) -> tuple[slice, slice, slice]:
        return (slice(self.z0, self.z1), slice(self.y0, self.y1),
                slice(self.x0, self.x1))

    def _nbr(self, dx: int, dy: int, dz: int) -> int | None:
        cx, cy, cz = self.cx + dx, self.cy + dy, self.cz + dz
        if 0 <= cx < self.px and 0 <= cy < self.py and 0 <= cz < self.pz:
            return (cz * self.py + cy) * self.px + cx
        return None

    @property
    def left(self) -> int | None:
        return self._nbr(-1, 0, 0)

    @property
    def right(self) -> int | None:
        return self._nbr(+1, 0, 0)

    @property
    def down(self) -> int | None:
        return self._nbr(0, -1, 0)

    @property
    def up(self) -> int | None:
        return self._nbr(0, +1, 0)

    @property
    def back(self) -> int | None:
        return self._nbr(0, 0, -1)

    @property
    def front(self) -> int | None:
        return self._nbr(0, 0, +1)

    @property
    def neighbors(self) -> dict[str, int | None]:
        return {side: getattr(self, side) for side in SIDES_3D}

    @property
    def n_neighbors(self) -> int:
        return sum(1 for r in self.neighbors.values() if r is not None)

    def extension(self, depth: int) -> dict[str, int]:
        """Extension toward each neighbour (zero at physical boundaries)."""
        return {side: (depth if nbr is not None else 0)
                for side, nbr in self.neighbors.items()}


def decompose3d(grid: Grid3D, nranks: int,
                factors: tuple[int, int, int] | None = None) -> list[Tile3D]:
    """Decompose a 3D grid into one :class:`Tile3D` per rank."""
    if factors is None:
        px, py, pz = choose_factors_3d(nranks, grid.nx, grid.ny, grid.nz)
    else:
        px, py, pz = factors
        if px * py * pz != nranks:
            raise DecompositionError(
                f"factors {px}x{py}x{pz} != nranks {nranks}")
    if px > grid.nx or py > grid.ny or pz > grid.nz:
        raise DecompositionError(
            f"cannot give each of {px}x{py}x{pz} ranks a nonempty tile of "
            f"a {grid.nx}x{grid.ny}x{grid.nz} grid")
    xr = _split(grid.nx, px)
    yr = _split(grid.ny, py)
    zr = _split(grid.nz, pz)
    tiles = []
    for cz in range(pz):
        for cy in range(py):
            for cx in range(px):
                rank = (cz * py + cy) * px + cx
                tiles.append(Tile3D(
                    rank=rank, cx=cx, cy=cy, cz=cz, px=px, py=py, pz=pz,
                    x0=xr[cx][0], x1=xr[cx][1],
                    y0=yr[cy][0], y1=yr[cy][1],
                    z0=zr[cz][0], z1=zr[cz][1]))
    return tiles
