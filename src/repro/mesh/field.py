"""Halo-padded cell-centred fields.

A :class:`Field` owns a ``(ny + 2h, nx + 2h)`` array where ``h`` is the halo
depth.  TeaLeaf's matrix powers kernel needs halos "up to 16 deep", so the
depth is a per-field parameter; the interior and arbitrarily *extended*
regions (interior grown by ``e <= h`` cells toward neighbouring ranks) are
exposed as NumPy views so kernels never copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.decomposition import Tile
from repro.utils.validation import check_positive, require


@dataclass
class Field:
    """A rank-local cell-centred array padded with ghost layers.

    Parameters
    ----------
    tile:
        The owning tile (provides interior shape and neighbour topology).
    halo:
        Ghost-layer depth ``h >= 1``.
    data:
        Optional pre-existing padded array of shape
        ``(tile.ny + 2h, tile.nx + 2h)``; allocated (zeros) when omitted.
    dtype:
        Working precision of the allocated array (ignored when ``data`` is
        supplied — the field then adopts ``data.dtype``).  Defaults to
        float64, matching TeaLeaf; :mod:`repro.numerics` passes float32
        here for mixed-precision solves.
    """

    tile: Tile
    halo: int
    data: np.ndarray = None
    dtype: np.dtype = np.float64

    def __post_init__(self):
        check_positive("halo", self.halo)
        shape = (self.tile.ny + 2 * self.halo, self.tile.nx + 2 * self.halo)
        if self.data is None:
            self.data = np.zeros(shape, dtype=self.dtype)
        else:
            require(self.data.shape == shape,
                    f"padded data shape {self.data.shape} != expected {shape}")
        self.dtype = self.data.dtype

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_global(cls, tile: Tile, halo: int, global_array: np.ndarray,
                    dtype: np.dtype = np.float64) -> "Field":
        """Create a field whose interior is this tile's slice of a global array."""
        f = cls(tile, halo, dtype=dtype)
        f.interior[...] = global_array[tile.global_slices]
        return f

    @classmethod
    def like(cls, other: "Field") -> "Field":
        """A zeroed field with the same tile, halo depth and dtype."""
        return cls(other.tile, other.halo, dtype=other.dtype)

    def copy(self) -> "Field":
        return Field(self.tile, self.halo, self.data.copy())

    # -- views --------------------------------------------------------------

    @property
    def interior(self) -> np.ndarray:
        """View of the owned (non-ghost) cells, shape ``(ny, nx)``."""
        h = self.halo
        return self.data[h:h + self.tile.ny, h:h + self.tile.nx]

    @interior.setter
    def interior(self, value) -> None:
        # Enables `f.interior += v` / `f.interior = arr`: the augmented
        # assignment mutates the view in place and then re-assigns it here.
        h = self.halo
        self.data[h:h + self.tile.ny, h:h + self.tile.nx] = value

    def region(self, ext: dict[str, int] | int = 0) -> tuple[slice, slice]:
        """Padded-array slices of the interior grown by ``ext`` per side.

        ``ext`` is either a uniform integer or a dict with keys
        ``left/right/down/up``.  Growth is clipped to sides that actually
        have a neighbouring rank (physical boundaries never extend); this is
        the "extended loop bounds" of the matrix powers kernel (paper
        Fig. 2).
        """
        if isinstance(ext, int):
            ext = self.tile.extension(ext)
        for side, e in ext.items():
            require(0 <= e <= self.halo,
                    f"extension {e} on {side} exceeds halo depth {self.halo}")
        h, t = self.halo, self.tile
        rows = slice(h - ext.get("down", 0), h + t.ny + ext.get("up", 0))
        cols = slice(h - ext.get("left", 0), h + t.nx + ext.get("right", 0))
        return rows, cols

    def extended(self, ext: dict[str, int] | int) -> np.ndarray:
        """View of the interior grown by ``ext`` toward neighbouring ranks."""
        rows, cols = self.region(ext)
        return self.data[rows, cols]

    # -- mutation helpers ----------------------------------------------------

    def fill(self, value: float) -> "Field":
        self.data.fill(value)
        return self

    def zero_halos(self) -> "Field":
        """Zero every ghost cell, keeping the interior intact."""
        keep = self.interior.copy()
        self.data.fill(0.0)
        self.interior[...] = keep
        return self

    # -- reductions (rank-local; global reductions live on the operator) -----

    def local_dot(self, other: "Field") -> float:
        """Rank-local interior dot product."""
        return float(np.dot(self.interior.ravel(), other.interior.ravel()))

    def local_sum(self) -> float:
        return float(self.interior.sum())

    def local_norm2(self) -> float:
        """Rank-local squared 2-norm of the interior."""
        return self.local_dot(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Field(rank={self.tile.rank}, interior={self.tile.shape}, "
                f"halo={self.halo})")
