"""Global grid geometry for the TeaLeaf mini-app.

Cells are indexed ``(k, j)`` = (row/y, column/x) to match NumPy's C-ordering
(``x`` is the contiguous axis).  The paper's Listing 1 uses ``(j, k)`` Fortran
indexing; the stencils are identical, only the storage order differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive, require


@dataclass(frozen=True)
class Grid2D:
    """A global 2D regular grid of ``nx`` x ``ny`` cells.

    Parameters
    ----------
    nx, ny:
        Number of cells in x and y.
    extent:
        Physical bounds ``(xmin, xmax, ymin, ymax)``; defaults to the
        TeaLeaf convention of a ``10 x 10`` box.
    """

    nx: int
    ny: int
    extent: tuple[float, float, float, float] = (0.0, 10.0, 0.0, 10.0)

    def __post_init__(self):
        check_positive("nx", self.nx)
        check_positive("ny", self.ny)
        xmin, xmax, ymin, ymax = self.extent
        require(xmax > xmin and ymax > ymin, f"degenerate extent {self.extent}")

    @property
    def dx(self) -> float:
        xmin, xmax, _, _ = self.extent
        return (xmax - xmin) / self.nx

    @property
    def dy(self) -> float:
        _, _, ymin, ymax = self.extent
        return (ymax - ymin) / self.ny

    @property
    def shape(self) -> tuple[int, int]:
        """Array shape ``(ny, nx)`` of a cell-centred global field."""
        return (self.ny, self.nx)

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, Y)`` arrays of shape ``(ny, nx)`` with cell centres."""
        xmin, _, ymin, _ = self.extent
        x = xmin + (np.arange(self.nx) + 0.5) * self.dx
        y = ymin + (np.arange(self.ny) + 0.5) * self.dy
        return np.meshgrid(x, y)

    def refined(self, factor: int) -> "Grid2D":
        """Same physical domain with ``factor``x more cells per axis."""
        check_positive("factor", factor)
        return Grid2D(self.nx * factor, self.ny * factor, self.extent)

    def coarsened(self, factor: int = 2) -> "Grid2D":
        """Same physical domain with ``factor``x fewer cells per axis."""
        require(
            self.nx % factor == 0 and self.ny % factor == 0,
            f"grid {self.nx}x{self.ny} not divisible by coarsening factor {factor}",
        )
        return Grid2D(self.nx // factor, self.ny // factor, self.extent)


@dataclass(frozen=True)
class Grid3D:
    """A global 3D regular grid of ``nx`` x ``ny`` x ``nz`` cells.

    The paper's evaluation is 2D ("the 3D results are similar"); the 3D grid
    backs the 7-point operator and its serial solvers.
    """

    nx: int
    ny: int
    nz: int
    extent: tuple[float, float, float, float, float, float] = (
        0.0, 10.0, 0.0, 10.0, 0.0, 10.0,
    )

    def __post_init__(self):
        check_positive("nx", self.nx)
        check_positive("ny", self.ny)
        check_positive("nz", self.nz)
        xmin, xmax, ymin, ymax, zmin, zmax = self.extent
        require(
            xmax > xmin and ymax > ymin and zmax > zmin,
            f"degenerate extent {self.extent}",
        )

    @property
    def dx(self) -> float:
        return (self.extent[1] - self.extent[0]) / self.nx

    @property
    def dy(self) -> float:
        return (self.extent[3] - self.extent[2]) / self.ny

    @property
    def dz(self) -> float:
        return (self.extent[5] - self.extent[4]) / self.nz

    @property
    def shape(self) -> tuple[int, int, int]:
        """Array shape ``(nz, ny, nx)`` of a cell-centred global field."""
        return (self.nz, self.ny, self.nx)

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny * self.nz

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(X, Y, Z)`` arrays of shape ``(nz, ny, nx)``."""
        xmin, _, ymin, _, zmin, _ = self.extent
        x = xmin + (np.arange(self.nx) + 0.5) * self.dx
        y = ymin + (np.arange(self.ny) + 0.5) * self.dy
        z = zmin + (np.arange(self.nz) + 0.5) * self.dz
        Z, Y, X = np.meshgrid(z, y, x, indexing="ij")
        return X, Y, Z
