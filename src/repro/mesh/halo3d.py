"""Three-phase 3D halo exchange.

Phase order x -> y -> z, each later phase including the halos filled by the
earlier ones, so after all three every ghost cell within the depth —
faces, edges and corners — holds fresh neighbour data.  This is what the
3D matrix powers kernel requires before its shrinking-bounds sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.mesh.field3d import Field3D
from repro.utils.errors import CommunicationError
from repro.utils.events import EventLog

_TAGS = {"left": 201, "right": 202, "down": 203, "up": 204,
         "back": 205, "front": 206}


@dataclass
class HaloExchanger3D:
    """Ghost-cell exchange for one rank's 3D fields."""

    comm: object
    events: EventLog | None = dc_field(default=None)

    def exchange(self, fields: Field3D | list[Field3D], depth: int = 1
                 ) -> None:
        if isinstance(fields, Field3D):
            fields = [fields]
        if not fields:
            return
        tile = fields[0].tile
        for f in fields:
            if f.tile != tile:
                raise CommunicationError(
                    "all fields in one exchange must share a tile")
            if depth > f.halo:
                raise CommunicationError(
                    f"exchange depth {depth} exceeds field halo {f.halo}")
        nbytes = 0
        for phase in (self._phase_x, self._phase_y, self._phase_z):
            for f in fields:
                nbytes += phase(f, depth)
        if self.events is not None:
            self.events.record("halo_exchange", depth, bytes=nbytes)

    def _swap(self, t, lo_name: str, hi_name: str,
              a: np.ndarray, lo_send, lo_recv, hi_send, hi_recv) -> int:
        """Send both directions along one axis; returns payload bytes."""
        lo, hi = getattr(t, lo_name), getattr(t, hi_name)
        nbytes = 0
        if lo is not None:
            self.comm.send(np.ascontiguousarray(a[lo_send]), dest=lo,
                           tag=_TAGS[lo_name])
        if hi is not None:
            self.comm.send(np.ascontiguousarray(a[hi_send]), dest=hi,
                           tag=_TAGS[hi_name])
        if lo is not None:
            got = self.comm.recv(source=lo, tag=_TAGS[hi_name])
            a[lo_recv] = got
            nbytes += got.nbytes * 2
        if hi is not None:
            got = self.comm.recv(source=hi, tag=_TAGS[lo_name])
            a[hi_recv] = got
            nbytes += got.nbytes * 2
        return nbytes

    def _phase_x(self, f: Field3D, d: int) -> int:
        t, h, a = f.tile, f.halo, f.data
        zz = slice(h, h + t.nz)
        yy = slice(h, h + t.ny)
        return self._swap(
            t, "left", "right", a,
            lo_send=(zz, yy, slice(h, h + d)),
            lo_recv=(zz, yy, slice(h - d, h)),
            hi_send=(zz, yy, slice(h + t.nx - d, h + t.nx)),
            hi_recv=(zz, yy, slice(h + t.nx, h + t.nx + d)),
        )

    def _phase_y(self, f: Field3D, d: int) -> int:
        t, h, a = f.tile, f.halo, f.data
        zz = slice(h, h + t.nz)
        xx = slice(h - d, h + t.nx + d)  # include x halos
        return self._swap(
            t, "down", "up", a,
            lo_send=(zz, slice(h, h + d), xx),
            lo_recv=(zz, slice(h - d, h), xx),
            hi_send=(zz, slice(h + t.ny - d, h + t.ny), xx),
            hi_recv=(zz, slice(h + t.ny, h + t.ny + d), xx),
        )

    def _phase_z(self, f: Field3D, d: int) -> int:
        t, h, a = f.tile, f.halo, f.data
        yy = slice(h - d, h + t.ny + d)  # include xy halos
        xx = slice(h - d, h + t.nx + d)
        return self._swap(
            t, "back", "front", a,
            lo_send=(slice(h, h + d), yy, xx),
            lo_recv=(slice(h - d, h), yy, xx),
            hi_send=(slice(h + t.nz - d, h + t.nz), yy, xx),
            hi_recv=(slice(h + t.nz, h + t.nz + d), yy, xx),
        )


def reflect_boundaries_3d(f: Field3D, depth: int | None = None) -> None:
    """Mirror interior cells into halos on physical boundaries (3D).

    Phase order matches the exchange (x, then y with x-halos, then z with
    xy-halos) so edge and corner ghosts are consistent.
    """
    t, h, a = f.tile, f.halo, f.data
    d = f.halo if depth is None else depth
    if d > h:
        raise CommunicationError(f"reflect depth {d} exceeds halo {h}")
    zz = slice(h, h + t.nz)
    yy = slice(h, h + t.ny)
    if t.left is None:
        a[zz, yy, h - d:h] = a[zz, yy, h:h + d][:, :, ::-1]
    if t.right is None:
        a[zz, yy, h + t.nx:h + t.nx + d] = \
            a[zz, yy, h + t.nx - d:h + t.nx][:, :, ::-1]
    xx = slice(h - d, h + t.nx + d)
    if t.down is None:
        a[zz, h - d:h, xx] = a[zz, h:h + d, xx][:, ::-1, :]
    if t.up is None:
        a[zz, h + t.ny:h + t.ny + d, xx] = \
            a[zz, h + t.ny - d:h + t.ny, xx][:, ::-1, :]
    yyx = slice(h - d, h + t.ny + d)
    if t.back is None:
        a[h - d:h, yyx, xx] = a[h:h + d, yyx, xx][::-1, :, :]
    if t.front is None:
        a[h + t.nz:h + t.nz + d, yyx, xx] = \
            a[h + t.nz - d:h + t.nz, yyx, xx][::-1, :, :]
