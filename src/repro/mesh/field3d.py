"""Halo-padded 3D cell-centred fields.

Mirrors :class:`repro.mesh.field.Field` for cuboid tiles; the region/
extended API returns a 3-slice tuple so the dimension-agnostic solver code
can index ``data[region]`` without caring about rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.decomposition3d import Tile3D
from repro.utils.validation import check_positive, require


@dataclass
class Field3D:
    """A rank-local 3D array padded with ghost layers."""

    tile: Tile3D
    halo: int
    data: np.ndarray = None

    def __post_init__(self):
        check_positive("halo", self.halo)
        h = self.halo
        shape = (self.tile.nz + 2 * h, self.tile.ny + 2 * h,
                 self.tile.nx + 2 * h)
        if self.data is None:
            self.data = np.zeros(shape, dtype=np.float64)
        else:
            require(self.data.shape == shape,
                    f"padded data shape {self.data.shape} != {shape}")

    @classmethod
    def from_global(cls, tile: Tile3D, halo: int,
                    global_array: np.ndarray) -> "Field3D":
        f = cls(tile, halo)
        f.interior[...] = global_array[tile.global_slices]
        return f

    @classmethod
    def like(cls, other: "Field3D") -> "Field3D":
        return cls(other.tile, other.halo)

    def copy(self) -> "Field3D":
        return Field3D(self.tile, self.halo, self.data.copy())

    @property
    def interior(self) -> np.ndarray:
        h, t = self.halo, self.tile
        return self.data[h:h + t.nz, h:h + t.ny, h:h + t.nx]

    @interior.setter
    def interior(self, value) -> None:
        h, t = self.halo, self.tile
        self.data[h:h + t.nz, h:h + t.ny, h:h + t.nx] = value

    def region(self, ext: dict[str, int] | int = 0
               ) -> tuple[slice, slice, slice]:
        """Padded slices of the interior grown by ``ext`` per side."""
        if isinstance(ext, int):
            ext = self.tile.extension(ext)
        for side, e in ext.items():
            require(0 <= e <= self.halo,
                    f"extension {e} on {side} exceeds halo {self.halo}")
        h, t = self.halo, self.tile
        planes = slice(h - ext.get("back", 0), h + t.nz + ext.get("front", 0))
        rows = slice(h - ext.get("down", 0), h + t.ny + ext.get("up", 0))
        cols = slice(h - ext.get("left", 0), h + t.nx + ext.get("right", 0))
        return planes, rows, cols

    def extended(self, ext: dict[str, int] | int) -> np.ndarray:
        return self.data[self.region(ext)]

    def fill(self, value: float) -> "Field3D":
        self.data.fill(value)
        return self

    def local_dot(self, other: "Field3D") -> float:
        return float(np.dot(self.interior.ravel(), other.interior.ravel()))

    def local_sum(self) -> float:
        return float(self.interior.sum())

    def local_norm2(self) -> float:
        return self.local_dot(self)
