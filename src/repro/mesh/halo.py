"""Depth-*d* halo exchange between neighbouring tiles.

The exchange is the classic two-phase scheme TeaLeaf uses:

1. **x-phase** — swap ``d`` columns with the left/right neighbours over the
   interior row range;
2. **y-phase** — swap ``d`` rows with the down/up neighbours over the row
   range *including* the x-halos just received.

After both phases every ghost cell within depth ``d`` — including the corner
blocks — holds fresh neighbour data, which is exactly what the matrix powers
kernel requires before running ``d`` stencil applications without further
communication (paper Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.mesh.field import Field
from repro.utils.errors import CommunicationError
from repro.utils.events import EventLog

# Distinct tag streams per (phase, direction) so concurrent exchanges of
# different fields cannot cross-match.
_TAG_LEFT, _TAG_RIGHT, _TAG_DOWN, _TAG_UP = 101, 102, 103, 104


@dataclass
class HaloExchanger:
    """Performs ghost-cell exchanges for one rank's fields.

    Parameters
    ----------
    comm:
        A communicator exposing ``send(obj, dest, tag)`` and
        ``recv(source, tag)`` (see :mod:`repro.comm`).
    events:
        Optional :class:`EventLog`; each call records a
        ``("halo_exchange", depth)`` event with the payload byte count.
    tracer:
        Optional :class:`~repro.observe.trace.Tracer`; each call emits a
        ``halo_exchange`` span keyed by depth (null tracer by default).
    kernels:
        Optional :class:`~repro.kernels.KernelBackend` providing the
        ``pack_halo``/``unpack_halo`` kernels (``numpy`` baseline by
        default; the owning operator shares its backend).
    """

    comm: object
    events: EventLog | None = dc_field(default=None)
    tracer: object = dc_field(default=None)
    kernels: object = dc_field(default=None)

    def __post_init__(self) -> None:
        if self.tracer is None:
            # Deferred import: keeps repro.mesh importable without pulling
            # the observability package in at module load.
            from repro.observe.trace import NULL_TRACER
            self.tracer = NULL_TRACER
        if self.kernels is None:
            from repro.kernels import DEFAULT_BACKEND, get_backend
            self.kernels = get_backend(DEFAULT_BACKEND)

    def exchange(self, fields: Field | list[Field], depth: int = 1) -> None:
        """Exchange depth-``depth`` halos for one or more fields.

        Multiple fields passed together are exchanged in one logical event
        (TeaLeaf packs several arrays per message); payload bytes accumulate
        across them.
        """
        if isinstance(fields, Field):
            fields = [fields]
        if not fields:
            return
        tile = fields[0].tile
        for f in fields:
            if f.tile is not tile and f.tile != tile:
                raise CommunicationError(
                    "all fields in one exchange must share a tile")
            if depth > f.halo:
                raise CommunicationError(
                    f"exchange depth {depth} exceeds field halo {f.halo}")
        with self.tracer.span("halo_exchange", depth):
            nbytes = 0
            for f in fields:
                nbytes += self._exchange_x(f, depth)
            for f in fields:
                nbytes += self._exchange_y(f, depth)
        if self.events is not None:
            self.events.record("halo_exchange", depth, bytes=nbytes)

    # -- split-phase (overlap) API --------------------------------------------

    def begin_exchange(self, fields: Field | list[Field],
                       depth: int = 1) -> dict:
        """Post the x-phase of an exchange and return a pending handle.

        The caller may compute on the interior while neighbour data is in
        flight, then call :meth:`end_exchange` — this is the hook for the
        paper's §VII plan to overlap communications "with the application
        of the preconditioner".  Only the x-phase overlaps: the y-phase
        must see the received x-halos (corner propagation), so it runs in
        :meth:`end_exchange`.
        """
        if isinstance(fields, Field):
            fields = [fields]
        pending = {"fields": fields, "depth": depth, "recvs": [], "bytes": 0}
        with self.tracer.span("halo_begin", depth):
            for f in fields:
                if depth > f.halo:
                    raise CommunicationError(
                        f"exchange depth {depth} exceeds field halo {f.halo}")
                t, h, a = f.tile, f.halo, f.data
                rows = slice(h, h + t.ny)
                if t.left is not None:
                    self.comm.send(
                        self.kernels.pack_halo(a, rows, slice(h, h + depth)),
                        dest=t.left, tag=_TAG_LEFT)
                    req = self.comm.irecv(source=t.left, tag=_TAG_RIGHT)
                    pending["recvs"].append(
                        (f, (rows, slice(h - depth, h)), req))
                if t.right is not None:
                    self.comm.send(
                        self.kernels.pack_halo(
                            a, rows, slice(h + t.nx - depth, h + t.nx)),
                        dest=t.right, tag=_TAG_RIGHT)
                    req = self.comm.irecv(source=t.right, tag=_TAG_LEFT)
                    pending["recvs"].append(
                        (f, (rows, slice(h + t.nx, h + t.nx + depth)), req))
        return pending

    def end_exchange(self, pending: dict) -> None:
        """Complete a :meth:`begin_exchange`: wait x, then run the y-phase."""
        depth = pending["depth"]
        # Span named like the blocking exchange so span counts stay
        # one-to-one with ("halo_exchange", depth) events either way.
        with self.tracer.span("halo_exchange", depth):
            nbytes = 0
            for f, region, req in pending["recvs"]:
                got = req.wait()
                self.kernels.unpack_halo(f.data, region[0], region[1], got)
                nbytes += got.nbytes * 2
            for f in pending["fields"]:
                nbytes += self._exchange_y(f, depth)
        if self.events is not None:
            self.events.record("halo_exchange", depth, bytes=nbytes)

    # -- phases --------------------------------------------------------------

    def _exchange_x(self, f: Field, d: int) -> int:
        t, h, a = f.tile, f.halo, f.data
        rows = slice(h, h + t.ny)
        nbytes = 0
        # Post all sends first (non-blocking deposit), then blocking recvs.
        if t.left is not None:
            self.comm.send(self.kernels.pack_halo(a, rows, slice(h, h + d)),
                           dest=t.left, tag=_TAG_LEFT)
        if t.right is not None:
            self.comm.send(
                self.kernels.pack_halo(a, rows,
                                       slice(h + t.nx - d, h + t.nx)),
                dest=t.right, tag=_TAG_RIGHT)
        if t.left is not None:
            self.kernels.unpack_halo(a, rows, slice(h - d, h),
                                     self.comm.recv(source=t.left,
                                                    tag=_TAG_RIGHT))
            nbytes += t.ny * d * a.itemsize * 2  # send + recv payload
        if t.right is not None:
            self.kernels.unpack_halo(a, rows,
                                     slice(h + t.nx, h + t.nx + d),
                                     self.comm.recv(source=t.right,
                                                    tag=_TAG_LEFT))
            nbytes += t.ny * d * a.itemsize * 2
        return nbytes

    def _exchange_y(self, f: Field, d: int) -> int:
        t, h, a = f.tile, f.halo, f.data
        # Include the x-halos so corners propagate.
        cols = slice(h - d, h + t.nx + d)
        width = t.nx + 2 * d
        nbytes = 0
        if t.down is not None:
            self.comm.send(self.kernels.pack_halo(a, slice(h, h + d), cols),
                           dest=t.down, tag=_TAG_DOWN)
        if t.up is not None:
            self.comm.send(
                self.kernels.pack_halo(a, slice(h + t.ny - d, h + t.ny),
                                       cols),
                dest=t.up, tag=_TAG_UP)
        if t.down is not None:
            self.kernels.unpack_halo(a, slice(h - d, h), cols,
                                     self.comm.recv(source=t.down,
                                                    tag=_TAG_UP))
            nbytes += width * d * a.itemsize * 2
        if t.up is not None:
            self.kernels.unpack_halo(a, slice(h + t.ny, h + t.ny + d), cols,
                                     self.comm.recv(source=t.up,
                                                    tag=_TAG_DOWN))
            nbytes += width * d * a.itemsize * 2
        return nbytes


def reflect_boundaries(f: Field, depth: int | None = None) -> None:
    """Mirror interior cells into halos on *physical* boundaries.

    TeaLeaf's ``update_halo`` applies reflective (zero-gradient) boundary
    conditions this way.  The linear solvers do not need it — boundary face
    coefficients are zero so ghost values never contribute — but the physics
    driver and visualisation use it to keep ghost data meaningful.
    """
    t, h, a = f.tile, f.halo, f.data
    d = f.halo if depth is None else depth
    if d > h:
        raise CommunicationError(f"reflect depth {d} exceeds halo {h}")
    rows = slice(h, h + t.ny)
    if t.left is None:
        a[rows, h - d:h] = a[rows, h:h + d][:, ::-1]
    if t.right is None:
        a[rows, h + t.nx:h + t.nx + d] = a[rows, h + t.nx - d:h + t.nx][:, ::-1]
    cols = slice(h - d, h + t.nx + d)
    if t.down is None:
        a[h - d:h, cols] = a[h:h + d, cols][::-1, :]
    if t.up is None:
        a[h + t.ny:h + t.ny + d, cols] = a[h + t.ny - d:h + t.ny, cols][::-1, :]
