# Developer convenience targets.
#
# Every target that runs repo code sets PYTHONPATH=src so a plain checkout
# works without `pip install -e .` (matching the tier-1 verify command in
# ROADMAP.md).
PYTHON ?= python
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test test-fast bench bench-compare report figures examples trace lint verify-contracts resilience restart-demo stability sanitize chaos soak service-soak serve serve-demo clean

install:
	pip install -e .

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/

# The quick inner-loop subset: skips the long end-to-end runs and the
# multi-rank thread-world tests (markers registered in pyproject.toml).
test-fast:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/ -m "not slow and not distributed"

# Pinned kernel + solver microbenchmarks -> results/bench/BENCH_<n>.json
# (schema repro.bench/v1; see docs/kernels.md).  The pytest-benchmark
# suite under benchmarks/ still runs via `pytest benchmarks/` when the
# plugin is installed, but the ledger of record is `repro bench`.
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main bench --out results/bench

# Perf regression gate: quick fresh run, then diff its solver cases
# against the committed BENCH_8.json pin (kernel grids differ by design
# between quick and full suites; only overlapping cases are compared).
# Exits non-zero when any case regresses past the threshold.
bench-compare:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main bench --quick \
	    --out results/bench-compare --pr 1
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main bench \
	    --compare BENCH_8.json results/bench-compare/BENCH_1.json \
	    --threshold 2.5

report:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main report --out results

examples:
	$(PYTHONPATH_SRC) $(PYTHON) examples/quickstart.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/solver_comparison.py 64
	$(PYTHONPATH_SRC) $(PYTHON) examples/deck_driven.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/communication_avoiding.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/fault_tolerance.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/scaling_study.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/service_demo.py

# Observability: trace the crooked-pipe CPPCG solve and write
# results/trace/trace.jsonl + trace.chrome.json (open the latter in
# chrome://tracing or ui.perfetto.dev; see docs/observability.md).
trace:
	@mkdir -p results
	$(PYTHONPATH_SRC) $(PYTHON) -c "from pathlib import Path; \
	from repro.physics.deck import CROOKED_PIPE_DECK; \
	Path('results/tea.in').write_text(CROOKED_PIPE_DECK.format(n=32))"
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main trace \
	    --deck results/tea.in --solver cppcg --out results/trace

# Static analysis: the comm-contract linter (rules RPR0xx, see
# docs/analysis.md) always runs; ruff/mypy run when installed
# (`pip install -e .[dev]` — unavailable offline).
lint:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
	else echo "ruff not installed; skipped (pip install -e .[dev])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed; skipped (pip install -e .[dev])"; fi

# Dynamic contract verification: run each solver under InstrumentedComm and
# cross-check measured per-iteration comm counts against its COMM_CONTRACT.
verify-contracts:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis --verify-only

# Resilience: sweep injected fault rate x solver through the deterministic
# fault-injection stack (docs/resilience.md; exits non-zero when any
# configuration fails to converge), then re-verify the comm contracts with
# the resilient stack in place (faults disabled) and again with the
# checksummed-envelope + durable-checkpoint stack.
resilience:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.harness.resilience_sweep
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis --verify-only --verify-resilience
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis --verify-only --verify-integrity

# Durable checkpoint/restart end to end: run the crooked pipe with
# checkpointing on, simulate a crash that loses everything after the
# mid-run checkpoint, resume from disk with `repro restart`, and check
# the resumed field is bit-identical to the uninterrupted run
# (docs/resilience.md, "Checkpoint/restart & rank loss").
restart-demo:
	@rm -rf results/restart-demo && mkdir -p results/restart-demo
	$(PYTHONPATH_SRC) $(PYTHON) -c "from pathlib import Path; \
	from repro.physics.deck import CROOKED_PIPE_DECK; \
	Path('results/restart-demo/tea.in').write_text(CROOKED_PIPE_DECK.format(n=24))"
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main tealeaf \
	    --deck results/restart-demo/tea.in --ranks 2 --steps 4 \
	    --checkpoint-dir results/restart-demo/ck --checkpoint-interval 2 \
	    --out results/restart-demo/full.npy
	@echo "--- simulating a crash: dropping the in-memory state and the post-crash checkpoint ---"
	rm -rf results/restart-demo/ck/step-000004
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main restart \
	    --from results/restart-demo/ck --out results/restart-demo/resumed.npy
	$(PYTHONPATH_SRC) $(PYTHON) -c "import numpy as np; \
	full = np.load('results/restart-demo/full.npy'); \
	resumed = np.load('results/restart-demo/resumed.npy'); \
	assert np.array_equal(full, resumed), 'restart drifted from the uninterrupted run'; \
	print('restart is bit-identical to the uninterrupted run')"

# SPMD sanitizer (docs/analysis.md, "SPMD sanitizer"): the static rules
# RPR009-RPR011 over the library *and* the test-suite's rank programs,
# then re-prove every COMM_CONTRACT with the runtime sanitizer stacked
# outermost over the full resilience + integrity stack.
sanitize:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro tests \
	    --select RPR009,RPR010,RPR011
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis --verify-only --verify-sanitize

# Numerical stability: sweep the ill-conditioned crooked-pipe battery
# across solver x working-dtype x matrix-powers depth, unprotected vs
# protected by the repro.numerics stack (docs/numerics.md; exits non-zero
# when any protected cell misses tolerance without a diagnosis).
stability:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.harness.stability_sweep --n 16

# Chaos campaign (docs/resilience.md, "Chaos campaigns"): a pinned-seed
# storm of randomized fault plans against the *composed* resilient stack,
# every trial checked against the differential/accounting/durability
# oracle; writes results/chaos/CHAOS_<n>.json (the recovery-SLO ledger)
# and minimized fixtures for any failure.  Exits non-zero on any oracle
# or budget violation.
chaos:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.harness.chaos_sweep \
	    --trials 200 --out results/chaos

# Soak: periodic fault storms plus kill/restart cycles on the mini-app;
# the final field must stay bit-identical to one uninterrupted fault-free
# run.  Writes results/soak/SOAK_<n>.json.
soak:
	@rm -rf results/soak
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.harness.soak \
	    --cycles 3 --ranks 2 --out results/soak

# Service durability soak (docs/service.md, "Durability & crash
# recovery"): SIGKILL the journaled engine at seeded points mid-campaign
# (some kills land mid-frame, tearing the journal tail), restart and
# replay until the campaign completes, then verify against an
# uninterrupted same-seed run — zero lost acknowledgements, zero
# duplicate solves for journaled idempotency keys, oracle-clean results,
# byte-identical outcomes/journal/ledger.  Exits non-zero on any
# violation.  Writes results/service-soak/SOAK_SERVICE_<n>.json.
service-soak:
	@rm -rf results/service-soak
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main soak --service \
	    --seed 424243 --kill-seed 7 --requests 30 \
	    --out results/service-soak

# Multi-tenant solve service (docs/service.md): deterministic virtual-
# clock load sweep — mixed tenants/solvers/deadlines/cancels under a
# seeded chaos storm, every request ending in a classified terminal
# status and every served solution checked against the differential
# oracle.  Writes results/service/SERVICE_<n>.json; exits non-zero on
# any SLO or oracle violation.
serve:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main serve \
	    --requests 200 --out results/service

# Self-checking service demo: a short sweep (the determinism, zero-hang
# and classification gates all enforced by its exit code) plus the
# real-time asyncio front-end smoke.
serve-demo:
	@rm -rf results/serve-demo
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main serve \
	    --requests 60 --out results/serve-demo
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.cli.main serve --demo

clean:
	rm -rf results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
