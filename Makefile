# Developer convenience targets.
PYTHON ?= python

.PHONY: install test bench report figures examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli.main report --out results

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/solver_comparison.py 64
	$(PYTHON) examples/deck_driven.py
	$(PYTHON) examples/communication_avoiding.py
	$(PYTHON) examples/scaling_study.py

clean:
	rm -rf results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
