"""Ablation: the matrix powers kernel trade (paper §IV-C2, Figs. 1-2).

On a real decomposed run, deeper halos must cut the exchange count by the
depth factor while adding redundant stencil work and larger messages —
"we communicate approximately n times as much data at halo exchange, but we
do this n times less frequently, so the total amount of data communicated
will be the same while messages become larger".
"""

import math

import pytest

from repro.comm import launch_spmd
from repro.mesh import Field, decompose
from repro.solvers import StencilOperator2D, ppcg_solve
from repro.utils import EventLog

from benchmarks.conftest import write_result
from tests.helpers import crooked_pipe_system

N = 64
INNER = 16
DEPTHS = (1, 2, 4, 8)
_rows = {}


def run_depth(depth):
    g, kx, ky, bg = crooked_pipe_system(N)

    def rank_main(comm):
        tile = decompose(g, comm.size, factors=(2, 2))[comm.rank]
        log = EventLog()
        op = StencilOperator2D.from_global_faces(tile, depth, kx, ky, comm,
                                                 events=log)
        b = Field.from_global(tile, depth, bg)
        result = ppcg_solve(op, b, eps=1e-9, inner_steps=INNER,
                            halo_depth=depth)
        return result, log

    out = launch_spmd(rank_main, 4)
    return out[0]


@pytest.mark.parametrize("depth", DEPTHS)
def test_depth(benchmark, depth):
    result, log = benchmark.pedantic(run_depth, args=(depth,),
                                     iterations=1, rounds=1)
    assert result.converged
    _rows[depth] = {
        "outer": result.iterations,
        "deep_exchanges": log.count("halo_exchange", depth),
        "bytes": log.total("halo_exchange", "bytes"),
        "matvec_cells": log.total("matvec", "cells"),
    }


def test_matrix_powers_trade(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert set(_rows) == set(DEPTHS)
    outers = {d: _rows[d]["outer"] for d in DEPTHS}
    # identical algebra at every depth: same outer iteration counts
    assert len(set(outers.values())) == 1

    # exchange count drops ~ by the depth factor.  (At depth 1 the counter
    # also catches the outer/warm-up depth-1 exchanges, so it is a lower
    # bound there; deeper halos are uniquely tagged by their depth.)
    applies = outers[1] + 1
    per_apply = {d: _rows[d]["deep_exchanges"] / applies for d in DEPTHS}
    assert per_apply[1] >= INNER
    for d in DEPTHS[1:]:
        assert per_apply[d] == pytest.approx(math.ceil(INNER / d), abs=0.01)

    # total bytes roughly conserved (within 2x: corner overhead + 2-field
    # blocks), while redundant compute grows with depth
    assert _rows[8]["bytes"] < 2.5 * _rows[1]["bytes"]
    cells = [_rows[d]["matvec_cells"] for d in DEPTHS]
    assert all(a < b for a, b in zip(cells, cells[1:]))

    lines = ["depth,outer,deep_exchanges,halo_bytes,matvec_cells"]
    for d in DEPTHS:
        r = _rows[d]
        lines.append(f"{d},{r['outer']},{r['deep_exchanges']},"
                     f"{r['bytes']:.0f},{r['matvec_cells']:.0f}")
    write_result("ablation_matrix_powers.csv", "\n".join(lines))
    print("\n" + "\n".join(lines))
