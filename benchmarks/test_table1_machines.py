"""Table I regeneration: test setup specifications."""

from repro.harness.table1 import run_table1
from repro.io.tables import format_table

from benchmarks.conftest import write_result


def test_table1(benchmark, results_dir):
    rows = benchmark(run_table1)
    by_name = {r["system"]: r for r in rows}
    # the paper's Table I content
    assert by_name["Spruce"]["compute_device"] == "2x E5-2680v2"
    assert by_name["Piz Daint"]["compute_device"] == "NVIDIA K20x"
    assert by_name["Titan"]["compute_device"] == "NVIDIA K20x"
    assert by_name["Titan"]["max_nodes"] == 8192
    headers = list(rows[0])
    text = format_table(headers, [[r[h] for h in headers] for r in rows])
    write_result("table1.txt", text)
    print("\n" + text)
