"""Extended-study bench: the §VII solver roadmap at scale."""

from repro.harness.future_solvers import run_future_solvers

from benchmarks.conftest import write_result


def test_future_solvers_roadmap(benchmark):
    fig = benchmark.pedantic(run_future_solvers, iterations=1, rounds=1)

    # Single-reduction CG trades extra vector traffic (the maintained
    # s = A p recurrence) for half the reductions: it must LOSE in the
    # bandwidth-bound regime and WIN in the latency-bound regime, with a
    # crossover in between — the classic communication-avoiding bargain.
    nodes = fig.node_counts
    cg = fig.series["CG"]
    fused = fig.series["CG-fused"]
    assert fused[0] > cg[0]                      # 1 node: pure overhead
    assert fused[-1] < cg[-1]                    # 8192 nodes: clear win
    crossover = next(n for n, f, c in zip(nodes, fused, cg) if f < c)
    assert 32 <= crossover <= 1024

    # deflation without an iteration win is pure overhead at this dt
    dcg = fig.series["Deflated CG"]
    assert all(d >= c - 1e-12 for d, c in zip(dcg, cg))

    # CPPCG remains the best at the top end by a clear margin
    ppcg = fig.series["CPPCG - 16"]
    assert ppcg[-1] < 0.5 * min(cg[-1], fused[-1], dcg[-1])

    write_result("future_solvers.csv", fig.to_csv())
    write_result("future_solvers.txt", fig.to_text())
    print("\n" + fig.to_text())
