"""Shared benchmark fixtures and the results directory."""

from __future__ import annotations

from pathlib import Path

import pytest

#: Where figure benches drop their regenerated series.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
