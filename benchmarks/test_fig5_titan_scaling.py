"""Fig. 5 regeneration: CUDA strong scaling on Titan (1-8192 nodes).

Series: CG-1, PPCG-1/4/8/16 on the 4000x4000 crooked pipe.  Iteration counts
are measured from real solves and extrapolated; wall-clock comes from the
calibrated Titan model.  Shape assertions encode the paper's findings.
"""

import numpy as np

from repro.harness.fig5 import run_fig5

from benchmarks.conftest import write_result


def test_fig5_titan_scaling(benchmark):
    fig = benchmark.pedantic(run_fig5, iterations=1, rounds=1)
    nodes = fig.node_counts

    # "the CPPCG method strong scales significantly better than CG"
    assert fig.value("PPCG - 16", 8192) < fig.value("CG - 1", 8192) / 2

    # "improvements in performance still increasing at halo depths of 16"
    at_scale = {d: fig.value(f"PPCG - {d}", 8192) for d in (1, 4, 8, 16)}
    assert at_scale[16] < at_scale[8] < at_scale[4] < at_scale[1]

    # "TeaLeaf scaling plateaued once we reached 1,024 nodes on Titan":
    # the CG knee sits around 512-1024 and adding nodes then hurts
    cg = fig.series["CG - 1"]
    knee = nodes[int(np.argmin(cg))]
    assert 256 <= knee <= 2048
    assert cg[-1] > min(cg)

    # every line strong-scales well in the early regime (1 -> 64 nodes)
    for label, vals in fig.series.items():
        assert vals[0] / vals[nodes.index(64)] > 20

    # anchor: "4.26 seconds at 8,192 nodes" for the best CUDA config
    assert abs(fig.value("PPCG - 16", 8192) - 4.26) / 4.26 < 0.2

    write_result("fig5.csv", fig.to_csv())
    write_result("fig5.txt", fig.to_text())
    print("\n" + fig.to_text())
