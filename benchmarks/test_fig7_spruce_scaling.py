"""Fig. 7 regeneration: MPI and hybrid strong scaling on Spruce (CPU).

Paper findings encoded below:
- "The PETSc CG with BoomerAMG preconditioner implementation is the fastest
  at low node counts (1-8 for hybrid, 1-64 for flat MPI)";
- "our CPPCG solver's communication avoiding approach provides greater
  strong scaling capability from 128 nodes onwards";
- "PETSc+BoomerAMG's strong scaling performance peaks at just 32 nodes";
- "TeaLeaf's CPPCG solver continues to improve in performance all the way
  up to 512 nodes";
- "its hybrid and flat MPI versions delivering near identical performance";
- "At 512 nodes the CPPCG implementation delivers twice the performance of
  the best PETSc+BoomerAMG configuration".
"""

import numpy as np

from repro.harness.fig7 import run_fig7

from benchmarks.conftest import write_result


def test_fig7_spruce_scaling(benchmark):
    fig = benchmark.pedantic(run_fig7, iterations=1, rounds=1)
    nodes = fig.node_counts

    # baseline fastest at low node counts
    for n in (1, 2, 4, 8):
        assert fig.value("BoomerAMG (MPI)", n) < fig.value("CG - 1 (MPI)", n)
        assert fig.value("BoomerAMG (MPI)", n) < fig.value("PPCG - 1 (MPI)", n)

    # CPPCG overtakes the baseline by 128 nodes and keeps scaling
    assert fig.value("PPCG - 1 (MPI)", 128) < fig.value("BoomerAMG (MPI)", 128)
    ppcg = fig.series["PPCG - 1 (MPI)"]
    assert nodes[int(np.argmin(ppcg))] >= 512

    # the baseline's best configuration peaks early (paper: 32 nodes)
    amg_h = fig.series["BoomerAMG (Hybrid)"]
    assert nodes[int(np.argmin(amg_h))] <= 64
    assert amg_h[-1] > min(amg_h) * 1.5

    # hybrid ~ flat MPI for CPPCG
    for n in (64, 256, 1024):
        h = fig.value("PPCG - 1 (Hybrid)", n)
        f = fig.value("PPCG - 1 (MPI)", n)
        assert 0.5 < h / f < 2.0

    # ~2x over the best baseline at 512 nodes
    best_amg_512 = min(fig.value("BoomerAMG (Hybrid)", 512),
                       fig.value("BoomerAMG (MPI)", 512))
    best_ppcg_512 = min(fig.value("PPCG - 1 (Hybrid)", 512),
                        fig.value("PPCG - 1 (MPI)", 512))
    assert 1.5 < best_amg_512 / best_ppcg_512 < 4.0

    write_result("fig7.csv", fig.to_csv())
    write_result("fig7.txt", fig.to_text())
    print("\n" + fig.to_text())
