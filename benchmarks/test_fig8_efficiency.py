"""Fig. 8 regeneration: scaling efficiency of the best config per machine.

Paper: Spruce's CPPCG "maintains super linear scaling up to 512 nodes,
beating both Piz Daint and Titan in terms of ... scaling efficiency", and
"the scaling on Piz Daint is consistently higher than Titan on higher node
counts" (Aries vs Gemini).
"""

import math

from repro.harness.fig8 import run_fig8

from benchmarks.conftest import write_result


def test_fig8_efficiency(benchmark):
    fig = benchmark.pedantic(run_fig8, iterations=1, rounds=1)
    nodes = fig.node_counts

    spruce = fig.series["Spruce - PPCG - 1 (MPI)"]
    piz = fig.series["Piz Daint - PPCG - 16 (CUDA)"]
    titan = fig.series["Titan - PPCG - 16 (CUDA)"]

    # Spruce super-linear (cache effect) and sustained through 512 nodes
    finite_spruce = [v for v in spruce if not math.isnan(v)]
    assert max(finite_spruce) > 1.3
    assert spruce[nodes.index(512)] > 0.9

    # Spruce efficiency beats both GPU machines where it exists
    for i, v in enumerate(spruce):
        if not math.isnan(v) and nodes[i] >= 32:
            assert v > titan[i]

    # Piz Daint >= Titan at every shared node count (interconnect effect),
    # with a visible gap at high node counts
    for i, p in enumerate(piz):
        if not math.isnan(p):
            assert p >= titan[i] - 1e-9
    assert piz[nodes.index(2048)] > 1.15 * titan[nodes.index(2048)]

    write_result("fig8.csv", fig.to_csv())
    write_result("fig8.txt", fig.to_text(value_fmt="{:.3f}"))
    print("\n" + fig.to_text(value_fmt="{:.3f}"))
