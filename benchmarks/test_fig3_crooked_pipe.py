"""Fig. 3 regeneration: the crooked-pipe temperature field at t = 15.

Paper: 4000x4000 after 15 us, rendered as a heat map — "heat travels faster
along this [pipe] area than elsewhere in the domain".  We run the same
physics at a reduced mesh (Fig. 4 shows the field is mesh-converged far
below 4000) and assert the structural facts the figure communicates.
"""

import numpy as np

from repro.harness.fig3 import run_fig3

from benchmarks.conftest import write_result

MESH = 48


def test_fig3_crooked_pipe(benchmark):
    result = benchmark.pedantic(run_fig3, args=(MESH,),
                                iterations=1, rounds=1)
    T = result.temperature
    pipe = result.pipe_mask()

    # heat races down the pipe: pipe is much hotter than the dense material
    assert T[pipe].mean() > 3 * T[~pipe].mean()

    # the source region (pipe inlet) is the hottest area
    n = MESH
    inlet = T[int(0.15 * n), : int(0.1 * n)].mean()
    assert inlet >= 0.9 * T.max()

    # heat decays along the pipe path (inlet -> first kink -> exit arm)
    first_leg = T[int(0.15 * n), int(0.3 * n)]
    exit_leg = T[int(0.75 * n), int(0.9 * n)]
    assert inlet > first_leg > exit_leg

    # insulated box: the domain mean equals the initial mean
    from repro.mesh import Grid2D
    from repro.physics import crooked_pipe, global_initial_state
    _, _, u0 = global_initial_state(Grid2D(MESH, MESH), crooked_pipe())
    assert T.mean() == np.float64(T.mean())
    assert abs(T.mean() - u0.mean()) < 1e-6 * u0.mean() + 1e-12

    art = result.render(width=72)
    write_result("fig3.txt", art
                 + f"\nmin={T.min():.4g} max={T.max():.4g} mean={T.mean():.4g}")
    print("\n" + art)
