"""Fig. 4 regeneration: mean temperature at convergence vs mesh size.

Paper: "as the size of the mesh increases, the average temperature that the
mesh converges to stops changing" — the justification for fixing the
strong-scaling study at 4000x4000.  We assert the refinement deltas shrink.
"""

from repro.harness.fig4 import run_fig4

from benchmarks.conftest import write_result

SIZES = (16, 24, 32, 48, 64)


def test_fig4_mesh_convergence(benchmark):
    result = benchmark.pedantic(
        run_fig4, kwargs=dict(mesh_sizes=SIZES, dt=1.0, eps=1e-8),
        iterations=1, rounds=1)
    deltas = result.deltas()

    # successive refinement changes the answer less and less
    assert deltas[-1] < deltas[0]
    late = sum(deltas[-2:]) / 2
    early = sum(deltas[:2]) / 2
    assert late < early

    lines = ["mesh_n,mean_temperature"]
    lines += [f"{n},{t:.8f}" for n, t in
              zip(result.mesh_sizes, result.mean_temperatures)]
    write_result("fig4.csv", "\n".join(lines))
    print("\n" + "\n".join(lines))
