"""Fig. 6 regeneration: CUDA strong scaling on Piz Daint (1-2048 nodes).

The paper's headline comparison: at 2048 nodes Piz Daint runs in 2.79 s vs
Titan's 4.09 s on identical GPUs — "this 47% strong scaling performance
improvement can be attributed to the fully connected network on Piz Daint".
"""

from repro.harness.fig5 import run_fig5
from repro.harness.fig6 import run_fig6

from benchmarks.conftest import write_result


def test_fig6_pizdaint_scaling(benchmark):
    fig = benchmark.pedantic(run_fig6, iterations=1, rounds=1)

    # same qualitative ordering as Titan
    at_scale = {d: fig.value(f"PPCG - {d}", 2048) for d in (1, 4, 8, 16)}
    assert at_scale[16] < at_scale[1]
    assert fig.value("PPCG - 16", 2048) < fig.value("CG - 1", 2048)

    # anchor: 2.79 s at 2048 nodes
    assert abs(fig.value("PPCG - 16", 2048) - 2.79) / 2.79 < 0.2

    # the interconnect effect: Titan slower at the same node count
    titan = run_fig5()
    ratio = titan.value("PPCG - 16", 2048) / fig.value("PPCG - 16", 2048)
    assert 1.2 < ratio < 1.9  # paper: 1.47

    write_result("fig6.csv", fig.to_csv())
    write_result("fig6.txt", fig.to_text()
                 + f"\nTitan/PizDaint at 2048 nodes: {ratio:.2f}x (paper 1.47x)")
    print("\n" + fig.to_text())
