"""Ablations for the §VII future-work extensions.

- fused (single-reduction) CG: halves the allreduce bill on real solves and
  beats classic CG at scale in the model;
- deflated CG: iteration reduction on stiff (large-dt) systems, measured;
- hybrid distributed multigrid: decomposed levels + agglomeration converge
  like the serial baseline;
- weak scaling: the iteration-growth argument for studying strong scaling;
- halo-depth sweep: where the matrix-powers trade turns over per machine.
"""

import numpy as np
import pytest

from repro.comm import InstrumentedComm, SerialComm
from repro.mesh import Field, decompose
from repro.solvers import (
    StencilOperator2D,
    cg_fused_solve,
    cg_solve,
    deflated_cg_solve,
)
from repro.utils import EventLog

from benchmarks.conftest import write_result
from tests.helpers import crooked_pipe_system


def _instrumented_op(g, kx, ky, halo=1):
    log = EventLog()
    comm = InstrumentedComm(SerialComm(), log)
    tile = decompose(g, 1)[0]
    op = StencilOperator2D.from_global_faces(tile, halo, kx, ky, comm,
                                             events=log)
    return op, log


def test_fused_cg_halves_reductions(benchmark):
    g, kx, ky, bg = crooked_pipe_system(96)

    def run():
        op1, log1 = _instrumented_op(g, kx, ky)
        b1 = Field.from_global(op1.tile, 1, bg)
        classic = cg_solve(op1, b1, eps=1e-9)
        op2, log2 = _instrumented_op(g, kx, ky)
        b2 = Field.from_global(op2.tile, 1, bg)
        fused = cg_fused_solve(op2, b2, eps=1e-9)
        return classic, log1, fused, log2

    classic, log1, fused, log2 = benchmark.pedantic(run, iterations=1,
                                                    rounds=1)
    assert classic.converged and fused.converged
    r_classic = log1.count_kind("allreduce")
    r_fused = log2.count_kind("allreduce")
    assert r_fused < 0.6 * r_classic
    write_result("ablation_fused_cg.csv",
                 "variant,iterations,allreduces\n"
                 f"classic,{classic.iterations},{r_classic}\n"
                 f"fused,{fused.iterations},{r_fused}")


def test_fused_cg_model_wins_at_scale(benchmark):
    """In the Titan model at 8192 nodes, one fewer allreduce matters."""
    from repro.harness.common import iteration_model_for
    from repro.perfmodel import TITAN, SolverConfig, predict_solve_time

    def run():
        out = {}
        for solver in ("cg", "cg_fused"):
            config = SolverConfig(solver)
            iters = iteration_model_for(SolverConfig("cg"))(4000)
            out[solver] = predict_solve_time(
                TITAN, config, 4000, 8192, outer_iters=iters,
                n_steps=5).seconds
        return out

    t = benchmark.pedantic(run, iterations=1, rounds=1)
    assert t["cg_fused"] < t["cg"]
    # the saving is the allreduce share, not a constant factor
    assert t["cg_fused"] > 0.5 * t["cg"]


def test_deflation_on_stiff_steps(benchmark):
    """Measured iteration reduction grows with time-step stiffness."""
    rows = ["dt,cg_iters,dcg4_iters,dcg8_iters"]

    def run():
        out = []
        for dt in (0.04, 10.0, 50.0):
            g, kx, ky, bg = crooked_pipe_system(48, dt=dt)
            op, _ = _instrumented_op(g, kx, ky)
            b = Field.from_global(op.tile, 1, bg)
            plain = cg_solve(op, b, eps=1e-9).iterations
            its = {}
            for blocks in ((4, 4), (8, 8)):
                op2, _ = _instrumented_op(g, kx, ky)
                b2 = Field.from_global(op2.tile, 1, bg)
                its[blocks] = deflated_cg_solve(
                    op2, b2, eps=1e-9, blocks=blocks).iterations
            out.append((dt, plain, its[(4, 4)], its[(8, 8)]))
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    for dt, plain, d4, d8 in data:
        rows.append(f"{dt},{plain},{d4},{d8}")
    # at the stiffest step, 8x8 deflation cuts iterations >= 2x
    dt, plain, d4, d8 = data[-1]
    assert d8 < 0.55 * plain
    assert d8 <= d4
    # at the paper's dt the effect is marginal (spectrum is shift-dominated)
    _, plain0, _, d80 = data[0]
    assert d80 > 0.8 * plain0
    write_result("ablation_deflation.csv", "\n".join(rows))


def test_hybrid_multigrid_distributed(benchmark):
    """Hybrid DD+agglomeration MG ~ serial-baseline convergence, 4 ranks."""
    from repro.comm import launch_spmd
    from repro.multigrid import mgcg_solve
    from repro.multigrid.distributed import dmgcg_solve

    g, kx, ky, bg = crooked_pipe_system(64)

    def run():
        op = _instrumented_op(g, kx, ky)[0]
        b = Field.from_global(op.tile, 1, bg)
        serial = mgcg_solve(op, b, eps=1e-10)

        def rank_main(comm):
            tile = decompose(g, comm.size)[comm.rank]
            dop = StencilOperator2D.from_global_faces(tile, 1, kx, ky, comm)
            db = Field.from_global(tile, 1, bg)
            return dmgcg_solve(dop, db, eps=1e-10)

        dist = launch_spmd(rank_main, 4)[0]
        return serial, dist

    serial, dist = benchmark.pedantic(run, iterations=1, rounds=1)
    assert serial.converged and dist.converged
    assert dist.iterations <= 2 * serial.iterations
    write_result("ablation_hybrid_mg.csv",
                 "variant,iterations,levels\n"
                 f"serial,{serial.iterations},{serial.n_levels}\n"
                 f"hybrid-4ranks,{dist.iterations},{dist.n_levels}")


def test_weak_scaling_decay(benchmark):
    """Why the paper studies strong scaling: weak efficiency ~ 1/sqrt(P)."""
    from repro.harness.common import iteration_model_for
    from repro.perfmodel import TITAN, SolverConfig
    from repro.perfmodel.weak import predict_weak_scaling, weak_efficiency

    def run():
        config = SolverConfig("ppcg", inner_steps=10, halo_depth=4)
        pts = predict_weak_scaling(
            TITAN, config, local_side=500,
            node_counts=[1, 4, 16, 64, 256],
            iteration_model=iteration_model_for(config))
        return pts, weak_efficiency(pts)

    pts, eff = benchmark.pedantic(run, iterations=1, rounds=1)
    assert all(a > b for a, b in zip(eff, eff[1:]))
    assert eff[-1] < 0.2  # collapsed by 256 nodes
    rows = ["nodes,mesh_n,seconds,weak_efficiency"]
    for p, e in zip(pts, eff):
        rows.append(f"{p.nodes},{p.mesh_n},{p.seconds:.3f},{e:.4f}")
    write_result("ablation_weak_scaling.csv", "\n".join(rows))


def test_depth_sweep_study(benchmark):
    """Best matrix-powers depth per machine/scale (§VI observations)."""
    from repro.harness.depth_sweep import run_depth_sweep
    from repro.perfmodel import MACHINES

    def run():
        return {
            "Titan": run_depth_sweep(MACHINES["Titan"]),
            "Spruce": run_depth_sweep(MACHINES["Spruce"],
                                      ranks_per_node=20),
        }

    sweeps = benchmark.pedantic(run, iterations=1, rounds=1)
    titan = sweeps["Titan"]
    spruce = sweeps["Spruce"]
    # GPUs: deep halos win at scale ("still increasing at depths of 16")
    assert titan.best_depth(8192) >= 8
    # CPUs: the benefit plateaus well below 16 (paper: around 8)
    assert spruce.best_depth(1024) <= 8
    rows = ["machine,nodes,best_depth"]
    for name, sweep in sweeps.items():
        for nodes, best in zip(sweep.node_counts, sweep.best_depths()):
            rows.append(f"{name},{nodes},{best}")
    write_result("ablation_depth_sweep.csv", "\n".join(rows))
