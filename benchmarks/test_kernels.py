"""Microbenchmarks of the computational kernels (Listing 1 and friends).

These are the building blocks whose byte-per-cell costs parameterise the
performance model; benchmarking them documents the achieved bandwidth of
every registered :mod:`repro.kernels` backend.  The stencil/BLAS-1 cases
parametrize over :func:`repro.kernels.available_backends`, so installing
an optional backend (numba) automatically widens the matrix.

The pinned ledger of record is ``repro bench`` (``make bench``, writing
``BENCH_<n>.json``); this pytest-benchmark suite is the interactive
companion for quick A/B runs when the plugin is installed.
"""

import numpy as np
import pytest

from repro.comm import SerialComm
from repro.kernels import available_backends, get_backend
from repro.mesh import Field, Grid2D, HaloExchanger, decompose
from repro.solvers import (
    BlockJacobiPreconditioner,
    DiagonalPreconditioner,
    StencilOperator2D,
)
from repro.solvers.chebyshev import ChebyshevIteration
from repro.solvers.eigen import EigenBounds

from tests.helpers import crooked_pipe_system

N = 512

BACKENDS = list(available_backends())


@pytest.fixture(scope="module")
def op():
    g, kx, ky, _ = crooked_pipe_system(N)
    tile = decompose(g, 1)[0]
    return StencilOperator2D.from_global_faces(tile, 1, kx, ky, SerialComm())


@pytest.fixture(scope="module")
def vec(op):
    rng = np.random.default_rng(7)
    return Field.from_global(op.tile, 1, rng.standard_normal((N, N)))


@pytest.fixture(scope="module", params=BACKENDS)
def routed_op(request, op):
    """The serial operator routed through each registered kernel backend."""
    return op.with_kernels(request.param)


def test_matvec(benchmark, routed_op, vec):
    """w = A p: the paper's Listing 1 kernel, per kernel backend."""
    w = routed_op.new_field()
    benchmark(routed_op.apply_noexchange, vec, w)


def test_matvec_with_exchange(benchmark, routed_op, vec):
    w = routed_op.new_field()
    benchmark(routed_op.apply, vec, w)


def test_matvec_dot_chain(benchmark, routed_op, vec):
    """The fusion CG chain: one exchange, stencil + direction dot."""
    w = routed_op.new_field()
    result = benchmark(routed_op.apply_dot, vec, w)
    assert result > 0


def test_residual_norm_chain(benchmark, routed_op, vec):
    """The Jacobi chain: residual + convergence norm in one pass."""
    r = routed_op.new_field()
    result = benchmark(routed_op.residual_dot, vec, vec, r)
    assert result >= 0


def test_dot_product(benchmark, routed_op, vec):
    result = benchmark(routed_op.dot, vec, vec)
    assert result > 0


def test_fused_dots(benchmark, routed_op, vec):
    """Two dot products in one reduction (the paper's §VII restructuring)."""
    benchmark(routed_op.dots, [(vec, vec), (vec, vec)])


@pytest.mark.parametrize("backend", BACKENDS)
def test_axpy(benchmark, backend, vec):
    """y += alpha x on the interior view, per kernel backend."""
    k = get_backend(backend)
    y = vec.copy()
    benchmark(k.axpy, y.interior, 0.0, vec.interior)


def test_diagonal_preconditioner(benchmark, op, vec):
    M = DiagonalPreconditioner(op)
    z = op.new_field()
    benchmark(M.apply, vec, z)


def test_block_jacobi_apply(benchmark, op, vec):
    """Vectorised Thomas over all 4x1 strips."""
    M = BlockJacobiPreconditioner(op)
    z = op.new_field()
    benchmark(M.apply, vec, z)


def test_block_jacobi_setup(benchmark, op):
    benchmark(BlockJacobiPreconditioner, op)


def test_chebyshev_inner_step(benchmark, op, vec):
    bounds = EigenBounds(1.0, 50.0)

    def one_step():
        rr = vec.copy()
        x = op.new_field()
        ChebyshevIteration(op, rr, x, bounds).run(1)

    benchmark(one_step)


def test_halo_pack_cost(benchmark):
    """Depth-8 halo exchange on a 2-rank world (pack + copy + unpack)."""
    from repro.comm import ThreadWorld
    import threading

    g = Grid2D(N, N)

    def run():
        world = ThreadWorld(2)
        out = []

        def rank_main(rank):
            comm = world.comm(rank)
            tile = decompose(g, 2)[rank]
            f = Field(tile, 8)
            HaloExchanger(comm).exchange(f, depth=8)
            out.append(rank)

        ts = [threading.Thread(target=rank_main, args=(r,)) for r in (0, 1)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert len(out) == 2

    benchmark(run)


def test_coefficient_build(benchmark):
    from repro.mesh import HaloExchanger
    from repro.physics import crooked_pipe, global_initial_state
    from repro.physics.state import build_coefficient_fields, build_fields

    g = Grid2D(N, N)
    density, energy, _ = global_initial_state(g, crooked_pipe())
    tile = decompose(g, 1)[0]
    fields = build_fields(tile, 1, density, energy)
    ex = HaloExchanger(SerialComm())
    benchmark(build_coefficient_fields, fields["density"], 1.0, 1.0, ex)
