"""Ablation: the solver design space on real (not modelled) solves.

Regenerates the paper's qualitative solver comparison at a tractable mesh:
iteration counts, reduction counts and wall-clock of Jacobi / CG /
CG+block-Jacobi / Chebyshev / CPPCG / MG-CG on the crooked-pipe first step.
"""

import pytest

from repro.comm import InstrumentedComm, SerialComm
from repro.mesh import Field, decompose
from repro.solvers import SolverOptions, StencilOperator2D, solve_linear
from repro.utils import EventLog

from benchmarks.conftest import write_result
from tests.helpers import crooked_pipe_system

N = 96
CASES = {
    "Jacobi": SolverOptions(solver="jacobi", eps=1e-8, max_iters=500_000),
    "CG": SolverOptions(solver="cg", eps=1e-8),
    "CG+block": SolverOptions(solver="cg", eps=1e-8,
                              preconditioner="block_jacobi"),
    "Chebyshev": SolverOptions(solver="chebyshev", eps=1e-8),
    "CPPCG": SolverOptions(solver="ppcg", eps=1e-8, ppcg_inner_steps=10),
    "MG-CG": SolverOptions(solver="mgcg", eps=1e-8),
}

_rows = {}


def run_case(options):
    g, kx, ky, bg = crooked_pipe_system(N)
    log = EventLog()
    comm = InstrumentedComm(SerialComm(), log)
    tile = decompose(g, 1)[0]
    op = StencilOperator2D.from_global_faces(
        tile, options.required_field_halo, kx, ky, comm, events=log)
    b = Field.from_global(tile, options.required_field_halo, bg)
    result = solve_linear(op, b, options=options)
    assert result.converged
    return result, log


@pytest.mark.parametrize("name", list(CASES))
def test_solver(benchmark, name):
    options = CASES[name]
    result, log = benchmark.pedantic(run_case, args=(options,),
                                     iterations=1, rounds=1)
    _rows[name] = {
        "outer": result.iterations,
        "inner": result.inner_iterations,
        "warmup": result.warmup_iterations,
        "allreduces": log.count_kind("allreduce"),
        "matvecs": log.count("matvec"),
    }


def test_design_space_shape(benchmark, results_dir):
    """Cross-solver assertions (runs after the parametrised cases)."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert set(_rows) == set(CASES)
    r = _rows
    # iteration hierarchy: Jacobi >> CG > CG+block; CPPCG outer tiny
    assert r["Jacobi"]["outer"] > 3 * r["CG"]["outer"]
    assert r["CG+block"]["outer"] < r["CG"]["outer"]
    assert r["CPPCG"]["outer"] < r["CG"]["outer"] / 4
    assert r["MG-CG"]["outer"] < r["CG"]["outer"] / 4
    # communication avoidance: CPPCG pays far fewer reductions than CG,
    # Chebyshev fewer still per matvec
    assert r["CPPCG"]["allreduces"] < r["CG"]["allreduces"] / 2
    assert (r["Chebyshev"]["allreduces"] / max(r["Chebyshev"]["matvecs"], 1)
            < r["CG"]["allreduces"] / r["CG"]["matvecs"])
    # O'Leary: polynomial preconditioning does not slash total matvecs
    assert r["CPPCG"]["matvecs"] > r["CG"]["matvecs"] / 3

    lines = ["solver,outer,inner,warmup,allreduces,matvecs"]
    for name, row in _rows.items():
        lines.append(f"{name},{row['outer']},{row['inner']},"
                     f"{row['warmup']},{row['allreduces']},{row['matvecs']}")
    write_result("ablation_solvers.csv", "\n".join(lines))
    print("\n" + "\n".join(lines))
