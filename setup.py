"""Shim enabling legacy editable installs (`pip install -e .`) in offline
environments without the `wheel` package; all metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
